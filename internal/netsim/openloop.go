package netsim

import (
	"cmp"
	"fmt"
	"slices"
)

// This file is the open-loop (steady-state) simulation mode. The
// closed-loop paths (Simulate, SimulateFaults, ...) inject every
// message at step 0 and run to drain; the open-loop path injects
// messages over time from an ArrivalSource and is built so that no
// per-step work is proportional to anything but live traffic:
//
//   - Routes are numbered once as *templates* (the same numberAll pass
//     every engine path uses); an arrival names a template, not a
//     route, so a run injecting millions of messages pays the
//     numbering pass once.
//   - Message state lives in a slot arena recycled through
//     per-template free lists: a delivered (or killed) message's
//     position range is reset and reused by a later arrival, so memory
//     is proportional to the peak in-flight window
//     (OpenLoopResult.MaxInFlight), never the injected total, and a
//     warm engine allocates nothing per message.
//   - A leap-step clock: whenever the network drains (no live
//     messages), the clock jumps directly to the next arrival's step
//     instead of iterating empty steps. In the synchronous model an
//     active network moves a flit every step, so the next event time
//     is min(next arrival, step+1) — the jump is exact, and
//     OpenLoopResult.SkippedSteps counts what it saved.
//
// Per-message latencies stream out through a LatencySink (or the
// PerMessage callback) instead of accumulating in result arrays.
//
// Semantics are pinned to the closed-loop engine: an arrival at step t
// joins its first link's FIFO at the end of step t (exactly where step
// t's newly arrived flits enqueue) and can cross its first link at
// step t+1, so a trace whose arrivals all say step 0 reproduces
// Simulate bit-identically. The per-step enqueue tie-break is the
// documented (message id, hop) order, with trace position serving as
// the message id. SimulateOpenLoopReference retains the naive
// per-step, no-recycling model as the golden reference; the fuzzer
// holds the two bit-identical.

// Arrival is one open-loop message injection: at the end of Step, a
// message with template Tmpl (an index into the template slice handed
// to SimulateOpenLoop) enters the network. Sources must produce
// arrivals in nondecreasing Step order; message ids are assigned in
// arrival order starting at 0.
type Arrival struct {
	Step int
	Tmpl int32
}

// ArrivalSource streams arrivals. Sources are pulled lazily, one
// arrival ahead of the simulated clock, so a source generating
// millions of arrivals (internal/traffic's Poisson and MMPP
// processes) never needs to materialize them.
//
// When OpenLoopOpts.Listener is non-nil, Next may be called again
// after it has returned ok=false: a listener reacting to a failure can
// schedule reroute arrivals, so exhaustion is re-checked at every
// injection point. Arrivals produced by a re-poll must still respect
// the nondecreasing-step contract relative to everything returned
// before. Listener-off runs never re-poll.
type ArrivalSource interface {
	// Next returns the next arrival, or ok=false when the source is
	// exhausted.
	Next() (Arrival, bool)
}

// Trace is a materialized arrival sequence — the replayable form used
// by the golden-model tests and by benchmarks that time several
// engines on identical input.
type Trace struct {
	Arrivals []Arrival
}

// Source returns a fresh source that replays the trace from the start.
func (t *Trace) Source() ArrivalSource {
	s := traceSource(t.Arrivals)
	return &s
}

type traceSource []Arrival

func (s *traceSource) Next() (Arrival, bool) {
	if len(*s) == 0 {
		return Arrival{}, false
	}
	a := (*s)[0]
	*s = (*s)[1:]
	return a, true
}

// RecordArrivals drains a source into a replayable Trace. max, when
// positive, bounds the recording: a source still producing past max
// arrivals is an error (guarding against unbounded generators).
func RecordArrivals(src ArrivalSource, max int) (*Trace, error) {
	tr := &Trace{}
	for {
		a, ok := src.Next()
		if !ok {
			return tr, nil
		}
		tr.Arrivals = append(tr.Arrivals, a)
		if max > 0 && len(tr.Arrivals) > max {
			return nil, fmt.Errorf("netsim: arrival source exceeded %d arrivals", max)
		}
	}
}

// LatencySink receives one per-message latency (delivery step minus
// arrival step) per delivered message, streamed as deliveries happen.
// *obsv.Histogram satisfies it, so open-loop latencies fold straight
// into fixed-size histogram buckets with no per-message storage.
type LatencySink interface {
	Observe(v int)
}

// OpenLoopOpts configures an open-loop run.
type OpenLoopOpts struct {
	// Mode is the switching discipline (StoreAndForward or CutThrough).
	Mode Mode
	// Faults, when non-nil, injects link faults exactly as in
	// SimulateFaults: transient outages delay, permanent outages fail
	// the messages queued on them. Steps are queried in absolute
	// open-loop time (there is no StepOffset: the open-loop clock is
	// the schedule clock).
	Faults LinkFaults
	// StepLimit, when positive, is a graceful timeout: the run stops
	// after that step, messages still in flight are failed (reported
	// with delivered=false at the limit step), and arrivals after the
	// limit are never injected. When zero, a livelock bound applies as
	// in Simulate and exceeding it is an error; a Faults model with
	// unbounded Horizon then requires an explicit StepLimit.
	StepLimit int
	// MeasureAfter is the warm-up cutoff: only messages that *arrive*
	// at or after this step feed Sink, so steady-state percentiles
	// exclude the transient ramp. PerMessage and the Result counters
	// always see every message.
	MeasureAfter int
	// Sink, when non-nil, receives delivery_step − arrival_step for
	// every delivered message arriving at or after MeasureAfter.
	Sink LatencySink
	// PerMessage, when non-nil, is called once per injected message at
	// its completion: delivery (delivered=true) or failure/timeout
	// (delivered=false, done is the failure step). msg is the arrival
	// index.
	PerMessage func(msg int32, arrival, done int, delivered bool)
	// Probe, when non-nil, receives observation events as in the
	// closed-loop paths, with two open-loop adjustments: RunInfo
	// .Messages is -1 (the total is unknown up front), and StepEnd
	// fires only for simulated steps — steps the leap clock skips
	// (nothing in flight) are never observed. Message ids are arrival
	// indices.
	Probe Probe
	// Listener, when non-nil, receives failure notifications (link
	// deaths and the message ids they doom) in the canonical order
	// documented on FaultListener, and enables source re-polling so a
	// reacting listener can inject reroute arrivals. Nil-checked at
	// every call site: listener-off runs are bit-identical.
	Listener FaultListener
}

// validate rejects option values that would otherwise silently
// misbehave: a negative MeasureAfter admits every message into the
// steady-state window, and a negative StepLimit disables the livelock
// bound without enabling the graceful timeout. Every open-loop entry
// point (engine, reference, sharded) runs this first.
func (o *OpenLoopOpts) validate() error {
	if o.StepLimit < 0 {
		return fmt.Errorf("netsim: OpenLoopOpts.StepLimit is negative (%d)", o.StepLimit)
	}
	if o.MeasureAfter < 0 {
		return fmt.Errorf("netsim: OpenLoopOpts.MeasureAfter is negative (%d)", o.MeasureAfter)
	}
	return nil
}

// OpenLoopResult is the aggregate outcome of an open-loop run. The
// conservation invariant generalizes over the *injected* prefix:
//
//	FlitsMoved + DroppedFlits == InjectedHops
//
// (arrivals never injected because a graceful StepLimit ended the run
// first are not counted in Injected or InjectedHops).
type OpenLoopResult struct {
	Result
	// Injected is the number of arrivals injected.
	Injected int
	// InjectedHops is Σ flits·len(route) over injected messages — the
	// right-hand side of the conservation invariant.
	InjectedHops int
	// SkippedSteps counts steps the leap clock jumped over without
	// simulating (Steps includes them: Steps is model time).
	SkippedSteps int
	// MaxInFlight is the peak number of simultaneously live messages —
	// the slot arena's high-water mark, and the run's memory footprint
	// in message slots.
	MaxInFlight int
	// TimedOut reports the run hit OpenLoopOpts.StepLimit with
	// messages in flight (all failed at that step) or arrivals still
	// pending (never injected).
	TimedOut bool
}

// SimulateOpenLoop runs the open-loop simulation on a pooled Engine:
// arrivals drawn from src instantiate route templates from tmpls and
// run under the same synchronous link model as Simulate. See
// OpenLoopOpts and the file comment for the contract. Like Simulate,
// it is safe for concurrent use.
func SimulateOpenLoop(tmpls []*Message, src ArrivalSource, opts OpenLoopOpts) (*OpenLoopResult, error) {
	e := enginePool.Get().(*Engine)
	olr, err := e.SimulateOpenLoop(tmpls, src, opts)
	enginePool.Put(e)
	return olr, err
}

// SimulateOpenLoop is the Engine-level open-loop path; see the
// package-level SimulateOpenLoop.
func (e *Engine) SimulateOpenLoop(tmpls []*Message, src ArrivalSource, opts OpenLoopOpts) (*OpenLoopResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	shape, err := e.numberAll(tmpls)
	if err != nil {
		return nil, err
	}
	links := shape.links
	maxRoute := shape.maxRoute

	graceful := opts.StepLimit > 0
	horizon := 0
	if opts.Faults != nil {
		horizon = opts.Faults.Horizon()
		if horizon < 0 && !graceful {
			return nil, fmt.Errorf("netsim: unbounded fault schedule requires OpenLoopOpts.StepLimit")
		}
	}

	e.growState(0, 0, int(links))
	oldProbe := e.probe
	if opts.Probe != nil {
		e.probe = opts.Probe
	}
	if e.probe != nil || opts.Faults != nil {
		e.fillExt(tmpls, links)
	}
	if e.probe != nil {
		e.probe.BeginRun(RunInfo{Messages: -1, Links: int(links), LinkExt: e.ext[:links], Mode: opts.Mode})
	}

	e.olReset(len(tmpls))

	olr := &OpenLoopResult{}
	e.res = &olr.Result
	defer func() {
		e.res = nil
		e.probe = oldProbe
	}()

	live := 0     // slots currently in flight
	inFlight := 0 // their total flits, for the livelock bound
	nextMsg := int32(0)
	lastStep := 0 // step of the last successful pull, for re-poll checks
	pending, havePending := src.Next()
	if havePending {
		if pending.Step < 0 {
			return nil, fmt.Errorf("netsim: arrival step %d is negative", pending.Step)
		}
		lastStep = pending.Step
	}

	// inject places the pending arrival at the given step and returns
	// the base position to enqueue, or -1 for empty-route templates
	// (delivered on the spot, latency 0).
	inject := func(step int) (int32, error) {
		a := pending
		if a.Tmpl < 0 || int(a.Tmpl) >= len(tmpls) {
			return -1, fmt.Errorf("netsim: arrival %d names template %d of %d", nextMsg, a.Tmpl, len(tmpls))
		}
		msg := nextMsg
		nextMsg++
		if nextMsg < 0 {
			return -1, fmt.Errorf("netsim: arrival count overflows int32 message ids")
		}
		olr.Injected++
		t := a.Tmpl
		flits := tmpls[t].Flits
		hops := int(e.off[t+1] - e.off[t])
		olr.InjectedHops += flits * hops
		if hops == 0 {
			olr.DeliveredMsgs++
			if e.probe != nil {
				e.probe.MsgDone(step, msg, true)
			}
			if opts.Sink != nil && step >= opts.MeasureAfter {
				opts.Sink.Observe(0)
			}
			if opts.PerMessage != nil {
				opts.PerMessage(msg, step, step, true)
			}
			return -1, nil
		}
		var s int32
		if fl := e.olFree[t]; len(fl) > 0 {
			s = fl[len(fl)-1]
			e.olFree[t] = fl[:len(fl)-1]
			base, end := e.olSpan(s)
			for p := base; p < end; p++ {
				e.olArrived[p] = 0
				e.olCrossed[p] = 0
				e.olBuffer[p] = 0
				e.olQueued[p] = false
			}
		} else {
			s = e.olNewSlot(t, flits)
		}
		e.olSlotMsg[s] = msg
		e.olSlotArr[s] = step
		base := e.olSlotOff[s]
		e.olArrived[base] = flits
		live++
		inFlight += flits
		if live > olr.MaxInFlight {
			olr.MaxInFlight = live
		}
		return base, nil
	}

	// advance reads the next arrival, enforcing nondecreasing steps.
	// advance always runs right after injecting the previous arrival,
	// so nextMsg is the offending arrival's index.
	advance := func() (Arrival, bool, error) {
		n, ok := src.Next()
		if ok {
			if n.Step < pending.Step {
				return n, ok, fmt.Errorf("netsim: arrival %d: steps must be nondecreasing (step %d after %d)", nextMsg, n.Step, pending.Step)
			}
			lastStep = n.Step
		}
		return n, ok, nil
	}

	// repoll re-queries an exhausted source. With a listener attached
	// the source may be a reacting session that schedules reroute
	// arrivals from failure callbacks, so ok=false is never final; the
	// engine asks again at every injection decision point. Listener-off
	// runs keep the historical one-ahead pull pattern untouched.
	repoll := func() error {
		if havePending || opts.Listener == nil {
			return nil
		}
		n, ok := src.Next()
		if !ok {
			return nil
		}
		if n.Step < lastStep {
			return fmt.Errorf("netsim: arrival %d: steps must be nondecreasing (step %d after %d)", nextMsg, n.Step, lastStep)
		}
		pending, havePending = n, true
		lastStep = n.Step
		return nil
	}

	// posCmp orders an enqueue batch by (message id, hop) — the
	// documented FIFO tie-break. Closed-loop paths get this for free by
	// sorting raw positions; with recycled slots position order is
	// arrival-history-dependent, so the batch is sorted through the
	// slot table instead.
	posCmp := func(a, b int32) int {
		sa, sb := e.olPosSlot[a], e.olPosSlot[b]
		if ma, mb := e.olSlotMsg[sa], e.olSlotMsg[sb]; ma != mb {
			if ma < mb {
				return -1
			}
			return 1
		}
		if ha, hb := a-e.olSlotOff[sa], b-e.olSlotOff[sb]; ha < hb {
			return -1
		}
		return 1
	}

	step := 0
	lastProgress := 0
	for {
		if live == 0 {
			if err := repoll(); err != nil {
				return nil, err
			}
			if !havePending {
				break
			}
			if graceful && pending.Step > opts.StepLimit {
				// The naive model would iterate to the limit and stop;
				// the pending arrivals are never injected.
				olr.TimedOut = true
				break
			}
			if pending.Step > step {
				olr.SkippedSteps += pending.Step - step
				step = pending.Step
			}
			// Leap landing: inject everything due now. Bases enqueue in
			// trace order, which is (message id, hop=0) order already.
			enq := e.enq[:0]
			for havePending && pending.Step == step {
				base, err := inject(step)
				if err != nil {
					return nil, err
				}
				if base >= 0 {
					enq = append(enq, base)
				}
				if pending, havePending, err = advance(); err != nil {
					return nil, err
				}
			}
			for _, p := range enq {
				e.olEnqueue(p)
			}
			e.enq = enq
			lastProgress = step
			continue
		}

		step++
		if graceful && step > opts.StepLimit {
			olr.TimedOut = true
			// Sweep in ascending message id order — the canonical
			// failure order shared with the sharded engine and the
			// reference model (slot order is arrival-history-dependent).
			sweep := e.kill[:0]
			for s := range e.olSlotMsg {
				if e.olSlotMsg[s] >= 0 {
					sweep = append(sweep, int32(s))
				}
			}
			slices.SortFunc(sweep, func(a, b int32) int {
				return cmp.Compare(e.olSlotMsg[a], e.olSlotMsg[b])
			})
			for _, s := range sweep {
				e.olFailSlot(s, opts.StepLimit, -1, &opts, olr)
				e.olSlotDead[s] = false
				e.olSlotMsg[s] = -1
			}
			e.kill = sweep[:0]
			live, inFlight = 0, 0
			break
		}
		if !graceful {
			slack := stepLimit(inFlight, maxRoute, live)
			if h := horizon - lastProgress; h > 0 {
				slack += h
			}
			if step-lastProgress > slack {
				return nil, fmt.Errorf("netsim: no progress after %d steps", slack)
			}
		}

		movedBefore := olr.FlitsMoved
		cur := e.work
		e.work = e.scratch[:0]
		arr := e.arrivals[:0]
		down := e.down[:0]
		// Transfer phase: identical to the closed-loop engines, over
		// the arena arrays.
		for _, l := range cur {
			if e.credit[l] <= 0 {
				e.inWork[l] = false
				continue
			}
			if opts.Faults != nil {
				if dn, perm := opts.Faults.Status(e.ext[l], step); dn {
					if !perm {
						e.work = append(e.work, l)
						continue
					}
					down = append(down, l)
					e.inWork[l] = false
					continue
				}
			}
			prev := int32(-1)
			p := e.qhead[l]
			for p >= 0 && e.olArrived[p]-e.olCrossed[p] <= 0 {
				prev = p
				p = e.olQNext[p]
			}
			if p < 0 { // defensive: credit promised a sendable request
				e.credit[l] = 0
				e.inWork[l] = false
				continue
			}
			s := e.olPosSlot[p]
			e.olCrossed[p]++
			e.credit[l]--
			olr.FlitsMoved++
			if e.probe != nil {
				e.probe.FlitMoved(step, e.olSlotMsg[s], l)
			}
			arr = append(arr, p)
			if e.olCrossed[p] == e.olSlotFl[s] {
				nx := e.olQNext[p]
				if prev < 0 {
					e.qhead[l] = nx
				} else {
					e.olQNext[prev] = nx
				}
				if nx < 0 {
					e.qtail[l] = prev
				}
				e.qlen[l]--
				e.olQueued[p] = false
			}
			if e.credit[l] > 0 {
				e.work = append(e.work, l)
			} else {
				e.inWork[l] = false
			}
		}
		// Kill phase: as in SimulateFaults, permanently-down links
		// fail their sendable queued messages after the transfer phase,
		// in a canonical order. Killed slots stay marked dead through
		// the arrival phase (their flits moved this step must not feed
		// downstream hops) and are recycled at the end of the step.
		killed := false
		if len(down) > 0 {
			slices.Sort(down)
			for _, l := range down {
				if opts.Listener != nil {
					opts.Listener.LinkDown(step, e.ext[l], true)
				}
				e.olKillQueued(l, step, &opts, olr)
			}
			killed = len(e.olKilled) > 0
		}
		e.down = down
		// Arrival phase.
		enq := e.enq[:0]
		for _, p := range arr {
			s := e.olPosSlot[p]
			if e.olSlotDead[s] {
				continue
			}
			flits := e.olSlotFl[s]
			msg := e.olSlotMsg[s]
			next := p + 1
			if _, end := e.olSpan(s); next == end {
				if e.probe != nil {
					e.probe.FlitDelivered(step, msg)
				}
				if e.olCrossed[p] == flits {
					olr.DeliveredMsgs++
					if e.probe != nil {
						e.probe.MsgDone(step, msg, true)
					}
					if opts.Sink != nil && e.olSlotArr[s] >= opts.MeasureAfter {
						opts.Sink.Observe(step - e.olSlotArr[s])
					}
					if opts.PerMessage != nil {
						opts.PerMessage(msg, e.olSlotArr[s], step, true)
					}
					// Recycle. Safe immediately: a message delivering at
					// this step moved no other flit this step (all its
					// upstream hops finished on earlier steps), so no
					// other arr entry or enq candidate can reach s.
					live--
					inFlight -= flits
					e.olSlotMsg[s] = -1
					e.olFree[e.olSlotTmpl[s]] = append(e.olFree[e.olSlotTmpl[s]], s)
				}
				continue
			}
			switch opts.Mode {
			case CutThrough:
				e.olArrived[next]++
				if e.olQueued[next] {
					e.addCredit(e.olRoute[next], 1)
				}
			case StoreAndForward:
				e.olBuffer[next]++
				if e.olBuffer[next] == flits {
					e.olArrived[next] = flits
					if e.olQueued[next] {
						e.addCredit(e.olRoute[next], flits-e.olCrossed[next])
					}
				}
			}
			if !e.olQueued[next] && e.olArrived[next] > 0 {
				enq = append(enq, next)
			}
		}
		// Recycle slots killed this step (after the arrival phase so
		// their dead flags were visible to it; before injections so a
		// same-step arrival can reuse them).
		for _, s := range e.olKilled {
			e.olSlotDead[s] = false
			live--
			inFlight -= e.olSlotFl[s]
			e.olSlotMsg[s] = -1
			e.olFree[e.olSlotTmpl[s]] = append(e.olFree[e.olSlotTmpl[s]], s)
		}
		e.olKilled = e.olKilled[:0]
		// Injections due this step join the enqueue batch. A listener
		// reacting to this step's kills may have scheduled reroutes, so
		// re-check an exhausted source first.
		if err := repoll(); err != nil {
			return nil, err
		}
		injected := false
		for havePending && pending.Step == step {
			base, err := inject(step)
			if err != nil {
				return nil, err
			}
			if base >= 0 {
				enq = append(enq, base)
			}
			injected = true
			if pending, havePending, err = advance(); err != nil {
				return nil, err
			}
		}
		slices.SortFunc(enq, posCmp)
		for _, p := range enq {
			e.olEnqueue(p)
		}
		e.enq = enq
		e.arrivals = arr
		e.scratch = cur[:0]
		if e.probe != nil {
			e.probe.StepEnd(step, e.qlen[:links])
		}
		if olr.FlitsMoved > movedBefore || killed || injected {
			lastProgress = step
		}
	}
	if olr.TimedOut {
		olr.Steps = opts.StepLimit
	} else {
		olr.Steps = step
	}
	return olr, nil
}

// olReset resets the slot arena for a run over ntmpl templates:
// truncate (capacity survives across runs) and empty the per-template
// free lists. Shared by the single-shard and sharded open-loop paths.
func (e *Engine) olReset(ntmpl int) {
	e.olSlotTmpl = e.olSlotTmpl[:0]
	e.olSlotOff = e.olSlotOff[:0]
	e.olSlotMsg = e.olSlotMsg[:0]
	e.olSlotArr = e.olSlotArr[:0]
	e.olSlotFl = e.olSlotFl[:0]
	e.olSlotDead = e.olSlotDead[:0]
	e.olKilled = e.olKilled[:0]
	e.olRoute = e.olRoute[:0]
	e.olPosSlot = e.olPosSlot[:0]
	e.olArrived = e.olArrived[:0]
	e.olCrossed = e.olCrossed[:0]
	e.olBuffer = e.olBuffer[:0]
	e.olQueued = e.olQueued[:0]
	e.olQNext = e.olQNext[:0]
	if cap(e.olFree) < ntmpl {
		e.olFree = append(e.olFree[:cap(e.olFree)], make([][]int32, ntmpl-cap(e.olFree))...)
	}
	e.olFree = e.olFree[:ntmpl]
	for i := range e.olFree {
		e.olFree[i] = e.olFree[i][:0]
	}
}

// olSpan returns slot s's position range [base, end) in the arena.
func (e *Engine) olSpan(s int32) (int32, int32) {
	base := e.olSlotOff[s]
	t := e.olSlotTmpl[s]
	return base, base + (e.off[t+1] - e.off[t])
}

// olNewSlot appends a fresh slot for template t to the arena, copying
// the template's dense route once. Append growth (not grow()) because
// the arena must survive reallocation with contents intact.
func (e *Engine) olNewSlot(t int32, flits int) int32 {
	s := int32(len(e.olSlotTmpl))
	base := int32(len(e.olRoute))
	e.olSlotTmpl = append(e.olSlotTmpl, t)
	e.olSlotOff = append(e.olSlotOff, base)
	e.olSlotMsg = append(e.olSlotMsg, -1)
	e.olSlotArr = append(e.olSlotArr, 0)
	e.olSlotFl = append(e.olSlotFl, flits)
	e.olSlotDead = append(e.olSlotDead, false)
	e.olRoute = append(e.olRoute, e.route[e.off[t]:e.off[t+1]]...)
	for range e.olRoute[base:] {
		e.olPosSlot = append(e.olPosSlot, s)
		e.olArrived = append(e.olArrived, 0)
		e.olCrossed = append(e.olCrossed, 0)
		e.olBuffer = append(e.olBuffer, 0)
		e.olQueued = append(e.olQueued, false)
		e.olQNext = append(e.olQNext, -1)
	}
	return s
}

// olEnqueue is enqueue over the arena arrays: appends position p to
// its link's FIFO, updates the peak queue metric, and activates the
// link if p brings sendable flits.
func (e *Engine) olEnqueue(p int32) {
	l := e.olRoute[p]
	if e.qtail[l] < 0 {
		e.qhead[l] = p
	} else {
		e.olQNext[e.qtail[l]] = p
	}
	e.qtail[l] = p
	e.olQNext[p] = -1
	e.olQueued[p] = true
	e.qlen[l]++
	if e.qlen[l] > e.res.MaxLinkQueue {
		e.res.MaxLinkQueue = e.qlen[l]
	}
	if avail := e.olArrived[p] - e.olCrossed[p]; avail > 0 {
		e.addCredit(l, avail)
	}
}

// olKillQueued fails every slot with a sendable request queued on the
// permanently-down dense link l (compare failQueued). A slot may be
// queued on l at two hops (routes can repeat a link); olFailSlot's
// dead check keeps the kill idempotent.
func (e *Engine) olKillQueued(l int32, step int, opts *OpenLoopOpts, olr *OpenLoopResult) {
	e.kill = e.kill[:0]
	for p := e.qhead[l]; p >= 0; p = e.olQNext[p] {
		s := e.olPosSlot[p]
		if e.olArrived[p]-e.olCrossed[p] > 0 && !e.olSlotDead[s] {
			e.kill = append(e.kill, s)
		}
	}
	blame := e.ext[l]
	for _, s := range e.kill {
		if e.olFailSlot(s, step, blame, opts, olr) {
			e.olKilled = append(e.olKilled, s)
		}
	}
}

// olFailSlot marks slot s failed at step: removes its queued requests
// from their FIFOs, returns their credits, accounts every not-yet-moved
// flit-hop as dropped, and reports the failure — blame is the external
// id of the killing link (-1 for StepLimit sweeps), forwarded to the
// FaultListener. Idempotent per step; the caller recycles the slot once
// the arrival phase has seen the dead flag. Reports whether this call
// did the kill.
func (e *Engine) olFailSlot(s int32, step, blame int, opts *OpenLoopOpts, olr *OpenLoopResult) bool {
	if e.olSlotDead[s] {
		return false
	}
	e.olSlotDead[s] = true
	olr.FailedMsgs++
	flits := e.olSlotFl[s]
	base, end := e.olSpan(s)
	dropped := 0
	for p := base; p < end; p++ {
		dropped += flits - e.olCrossed[p]
		if e.olQueued[p] {
			l := e.olRoute[p]
			e.olUnlink(l, p)
			e.qlen[l]--
			e.olQueued[p] = false
			if avail := e.olArrived[p] - e.olCrossed[p]; avail > 0 {
				e.credit[l] -= avail
			}
		}
	}
	olr.DroppedFlits += dropped
	msg := e.olSlotMsg[s]
	if e.probe != nil {
		e.probe.FlitsDropped(step, msg, dropped)
		e.probe.MsgDone(step, msg, false)
	}
	if opts.PerMessage != nil {
		opts.PerMessage(msg, e.olSlotArr[s], step, false)
	}
	if opts.Listener != nil {
		opts.Listener.MsgFailed(step, msg, blame)
	}
	return true
}

// olUnlink removes position p from dense link l's intrusive FIFO (the
// arena twin of unlink).
func (e *Engine) olUnlink(l, p int32) {
	prev := int32(-1)
	q := e.qhead[l]
	for q >= 0 && q != p {
		prev = q
		q = e.olQNext[q]
	}
	if q < 0 { // defensive: position was not queued here
		return
	}
	nx := e.olQNext[p]
	if prev < 0 {
		e.qhead[l] = nx
	} else {
		e.olQNext[prev] = nx
	}
	if nx < 0 {
		e.qtail[l] = prev
	}
}
