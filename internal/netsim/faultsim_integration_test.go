// The acceptance regression for the fault-aware engine path: with an
// empty fault schedule it must be bit-identical to the fault-free
// engine on the Theorem 1, Theorem 2, and Theorem 4 embedding traffic.
// External package: the construction packages transitively import
// netsim.
package netsim_test

import (
	"reflect"
	"testing"

	"multipath/internal/core"
	"multipath/internal/cycles"
	"multipath/internal/faults"
	"multipath/internal/hamdecomp"
	"multipath/internal/hypercube"
	"multipath/internal/netsim"
	"multipath/internal/traffic"
	"multipath/internal/xproduct"
)

// theoremCases builds the Theorem 1/2/4 embeddings and the width-path
// message sets the experiments route through the simulator.
func theoremCases(t *testing.T) map[string][]*netsim.Message {
	t.Helper()
	cases := make(map[string][]*netsim.Message)
	e1, err := cycles.Theorem1(8)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cycles.Theorem2(8)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := hamdecomp.Decompose(4)
	if err != nil {
		t.Fatal(err)
	}
	q := hypercube.New(4)
	var copies []*core.Embedding
	for _, cyc := range dec.Directed() {
		ce, err := core.DirectCycleEmbedding(q, cyc)
		if err != nil {
			t.Fatal(err)
		}
		copies = append(copies, ce)
	}
	_, e4, err := xproduct.Theorem4(copies)
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range map[string]*core.Embedding{
		"theorem1": e1, "theorem2": e2, "theorem4": e4,
	} {
		msgs, err := traffic.WidthPathMessages(e, 12)
		if err != nil {
			t.Fatal(err)
		}
		cases[name] = msgs
	}
	return cases
}

func TestFaultPathBitIdenticalOnTheoremTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three embeddings")
	}
	for name, msgs := range theoremCases(t) {
		for _, mode := range []netsim.Mode{netsim.StoreAndForward, netsim.CutThrough} {
			want, err := netsim.Simulate(msgs, mode)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			for label, opts := range map[string]netsim.FaultOpts{
				"nil-schedule":   {},
				"empty-schedule": {Faults: faults.NewSchedule()},
			} {
				fr, err := netsim.SimulateFaults(msgs, mode, opts)
				if err != nil {
					t.Fatalf("%s/%v/%s: %v", name, mode, label, err)
				}
				if !reflect.DeepEqual(&fr.Result, want) {
					t.Errorf("%s/%v/%s: fault path Result %+v != engine %+v",
						name, mode, label, fr.Result, *want)
				}
				for i, o := range fr.Outcomes {
					if !o.Delivered {
						t.Fatalf("%s/%v/%s: message %d not delivered: %+v", name, mode, label, i, o)
					}
				}
			}
		}
	}
}
