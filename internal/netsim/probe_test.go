package netsim

import (
	"reflect"
	"testing"

	"multipath/internal/faults"
)

// recordingProbe exercises every Probe hook and cross-checks the event
// stream's internal consistency against the run's Result.
type recordingProbe struct {
	begun     int
	info      RunInfo
	linkExt   []int
	steps     int
	lastStep  int
	maxQueue  int
	moves     int
	delivers  int
	dropFlits int
	doneOK    int
	doneFail  int
}

func (r *recordingProbe) BeginRun(info RunInfo) {
	r.begun++
	r.info = info
	r.linkExt = append(r.linkExt[:0], info.LinkExt...)
}

func (r *recordingProbe) StepEnd(step int, queueLen []int) {
	r.steps++
	if step != r.lastStep+1 {
		panic("StepEnd steps not consecutive")
	}
	r.lastStep = step
	if len(queueLen) != r.info.Links {
		panic("StepEnd queue vector length != RunInfo.Links")
	}
	for _, q := range queueLen {
		if q > r.maxQueue {
			r.maxQueue = q
		}
	}
}

func (r *recordingProbe) FlitMoved(step int, msg, link int32) {
	r.moves++
	if int(link) >= r.info.Links {
		panic("FlitMoved link out of range")
	}
}

func (r *recordingProbe) FlitDelivered(step int, msg int32) { r.delivers++ }

func (r *recordingProbe) FlitsDropped(step int, msg int32, flits int) { r.dropFlits += flits }

func (r *recordingProbe) MsgDone(step int, msg int32, delivered bool) {
	if delivered {
		r.doneOK++
	} else {
		r.doneFail++
	}
}

// checkAgainst asserts the stream-derived aggregates match the run's
// end-of-run Result. checkQueue applies only to the buffered paths,
// where the StepEnd queue peak is a lower bound on MaxLinkQueue (the
// peak is sampled at enqueue time, and a 1-flit message can cross and
// dequeue within the same step before StepEnd); the wormhole engine
// samples its wait lists on acquire attempts, which StepEnd's
// end-of-step snapshot can legitimately exceed.
func (r *recordingProbe) checkAgainst(t *testing.T, res *Result, steps int, checkQueue bool) {
	t.Helper()
	if r.begun != 1 {
		t.Errorf("BeginRun called %d times", r.begun)
	}
	if r.steps != steps {
		t.Errorf("StepEnd called %d times, run took %d steps", r.steps, steps)
	}
	if r.moves != res.FlitsMoved {
		t.Errorf("FlitMoved %d events, FlitsMoved %d", r.moves, res.FlitsMoved)
	}
	if r.doneOK != res.DeliveredMsgs || r.doneFail != res.FailedMsgs {
		t.Errorf("MsgDone ok=%d fail=%d, Result %d/%d",
			r.doneOK, r.doneFail, res.DeliveredMsgs, res.FailedMsgs)
	}
	if r.dropFlits != res.DroppedFlits {
		t.Errorf("FlitsDropped %d flit-hops, DroppedFlits %d", r.dropFlits, res.DroppedFlits)
	}
	if checkQueue && r.maxQueue > res.MaxLinkQueue {
		t.Errorf("StepEnd peak queue %d exceeds MaxLinkQueue %d", r.maxQueue, res.MaxLinkQueue)
	}
}

func probeWorkloads() [][]*Message {
	return [][]*Message{
		nil,
		{{Route: []int{1}, Flits: 2}, {Route: []int{2, 1}, Flits: 1}, {Route: []int{3, 1}, Flits: 1}},
		{{Route: nil, Flits: 1}, {Route: []int{7, 8, 9}, Flits: 4}},
		{{Route: []int{0, 1, 2, 3}, Flits: 3}, {Route: []int{3, 2, 1, 0}, Flits: 3}},
		{{Route: []int{5, 5, 5}, Flits: 2}, {Route: []int{5}, Flits: 6}},
	}
}

func TestSimulateProbedMatchesBare(t *testing.T) {
	for wi, msgs := range probeWorkloads() {
		for _, mode := range []Mode{StoreAndForward, CutThrough} {
			bare, err := Simulate(msgs, mode)
			if err != nil {
				t.Fatalf("workload %d %v: %v", wi, mode, err)
			}
			rp := &recordingProbe{}
			probed, err := SimulateProbed(msgs, mode, rp)
			if err != nil {
				t.Fatalf("workload %d %v probed: %v", wi, mode, err)
			}
			if !reflect.DeepEqual(bare, probed) {
				t.Errorf("workload %d %v: probe changed result\nbare   %+v\nprobed %+v",
					wi, mode, bare, probed)
			}
			rp.checkAgainst(t, probed, probed.Steps, true)
			// The external id table round-trips the route ids.
			for _, m := range msgs {
				for _, id := range m.Route {
					found := false
					for _, e := range rp.linkExt {
						if e == id {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("workload %d: external id %d missing from LinkExt %v",
							wi, id, rp.linkExt)
					}
				}
			}
		}
	}
}

func TestSimulateWormholeProbed(t *testing.T) {
	for wi, msgs := range probeWorkloads() {
		bare, bErr := SimulateWormhole(msgs)
		rp := &recordingProbe{}
		probed, pErr := SimulateWormholeProbed(msgs, rp)
		if (bErr == nil) != (pErr == nil) {
			t.Fatalf("workload %d: error mismatch %v vs %v", wi, bErr, pErr)
		}
		if bErr != nil {
			continue
		}
		if !reflect.DeepEqual(bare, probed) {
			t.Errorf("workload %d: probe changed wormhole result\nbare   %+v\nprobed %+v",
				wi, bare, probed)
		}
		if !rp.info.Wormhole {
			t.Errorf("workload %d: RunInfo.Wormhole not set", wi)
		}
		rp.checkAgainst(t, &probed.Result, probed.Steps, false)
	}
}

func TestSimulateFaultsProbed(t *testing.T) {
	msgs := []*Message{
		{Route: []int{1}, Flits: 2},
		{Route: []int{2, 1}, Flits: 1},
		{Route: []int{3, 4}, Flits: 2},
	}
	sched := faults.NewSchedule().
		FailLinkTransient(2, 1, 3). // delays message 1
		FailLink(4, 2)              // dooms message 2 mid-route
	for _, mode := range []Mode{StoreAndForward, CutThrough} {
		bare, err := SimulateFaults(msgs, mode, FaultOpts{Faults: sched})
		if err != nil {
			t.Fatal(err)
		}
		rp := &recordingProbe{}
		probed, err := SimulateFaults(msgs, mode, FaultOpts{Faults: sched, Probe: rp})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare, probed) {
			t.Errorf("%v: probe changed fault result\nbare   %+v\nprobed %+v", mode, bare, probed)
		}
		if probed.FailedMsgs != 1 {
			t.Fatalf("%v: schedule did not bite: %+v", mode, probed)
		}
		rp.checkAgainst(t, &probed.Result, probed.Steps, false)
	}
}

// FaultOpts.Probe overrides (and then restores) an Engine-level probe.
func TestFaultOptsProbePrecedence(t *testing.T) {
	e := NewEngine()
	engineProbe := &recordingProbe{}
	e.SetProbe(engineProbe)
	runProbe := &recordingProbe{}
	msgs := []*Message{{Route: []int{1}, Flits: 1}}
	if _, err := e.SimulateFaults(msgs, CutThrough, FaultOpts{Probe: runProbe}); err != nil {
		t.Fatal(err)
	}
	if runProbe.begun != 1 || engineProbe.begun != 0 {
		t.Errorf("override: run probe begun %d, engine probe begun %d", runProbe.begun, engineProbe.begun)
	}
	// The engine probe is back in force for the next run.
	if _, err := e.SimulateFaults(msgs, CutThrough, FaultOpts{}); err != nil {
		t.Fatal(err)
	}
	if engineProbe.begun != 1 {
		t.Errorf("engine probe not restored after FaultOpts.Probe run (begun=%d)", engineProbe.begun)
	}
}

// FuzzSimulateProbed replays the fault fuzzer's corpus shape and
// asserts the package-level guarantee: attaching a probe never changes
// Result or FaultResult, on the fault-free, fault, and wormhole paths.
func FuzzSimulateProbed(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{3, 2, 1, 1, 4, 2, 1, 2, 5}, []byte{2, 1, 1, 0, 5, 9, 1})
	f.Add([]byte{7, 6, 0, 1, 2, 3, 4, 5, 8}, []byte{6, 0, 1, 0, 1, 1, 1, 2, 2, 0, 3, 3, 1, 9})
	f.Add([]byte{5, 1, 3, 2, 1, 3, 2, 1, 3, 2}, []byte{1, 3, 1, 0})
	f.Fuzz(func(t *testing.T, mdata, sdata []byte) {
		msgs := decodeFuzzMessages(mdata)
		sched := decodeFuzzSchedule(sdata)
		for _, mode := range []Mode{StoreAndForward, CutThrough} {
			bare, err := Simulate(msgs, mode)
			if err != nil {
				t.Fatal(err)
			}
			rp := &recordingProbe{}
			probed, err := SimulateProbed(msgs, mode, rp)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(bare, probed) {
				t.Fatalf("%v: probe changed result: %+v vs %+v", mode, bare, probed)
			}
			rp.checkAgainst(t, probed, probed.Steps, true)

			bareF, err := SimulateFaults(msgs, mode, FaultOpts{Faults: sched})
			if err != nil {
				t.Fatal(err)
			}
			rpf := &recordingProbe{}
			probedF, err := SimulateFaults(msgs, mode, FaultOpts{Faults: sched, Probe: rpf})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(bareF, probedF) {
				t.Fatalf("%v: probe changed fault result: %+v vs %+v", mode, bareF, probedF)
			}
			rpf.checkAgainst(t, &probedF.Result, probedF.Steps, true)
		}
		bareW, bErr := SimulateWormhole(msgs)
		rpw := &recordingProbe{}
		probedW, pErr := SimulateWormholeProbed(msgs, rpw)
		if (bErr == nil) != (pErr == nil) {
			t.Fatalf("wormhole error mismatch: %v vs %v", bErr, pErr)
		}
		if bErr == nil {
			if !reflect.DeepEqual(bareW, probedW) {
				t.Fatalf("probe changed wormhole result: %+v vs %+v", bareW, probedW)
			}
			rpw.checkAgainst(t, &probedW.Result, probedW.Steps, false)
		}
	})
}
