package netsim

import (
	"math/rand"

	"multipath/internal/bitutil"
	"multipath/internal/hamdecomp"
	"multipath/internal/hypercube"
)

// Randomized two-phase (Valiant) routing and adversarial permutations.
// The paper's §7 builds on the randomized store-and-forward routers of
// Valiant/Karlin–Upfal/Pippenger/Ranade ([17, 20, 23]): oblivious
// deterministic routing has permutations with Ω(√N) congestion, while
// routing via a random intermediate destination makes every permutation
// behave like an average one.

// BitReversalPermutation returns the classic adversary for e-cube
// routing on Q_n: node v goes to the bit-reversal of v. Dimension-
// ordered routes funnel 2^{n/2} messages through single links.
func BitReversalPermutation(n int) []int {
	out := make([]int, 1<<uint(n))
	for v := range out {
		out[v] = int(bitutil.ReverseBits(uint32(v), n))
	}
	return out
}

// TransposePermutation swaps the high and low halves of each address
// (matrix transpose), another e-cube adversary. n must be even.
func TransposePermutation(n int) []int {
	h := n / 2
	mask := 1<<uint(h) - 1
	out := make([]int, 1<<uint(n))
	for v := range out {
		lo := v & mask
		hi := v >> uint(h)
		out[v] = lo<<uint(h) | hi
	}
	return out
}

// ValiantMessages routes each message of a permutation through a
// uniformly random intermediate node: phase 1 e-cube to the
// intermediate, phase 2 e-cube to the destination. With high
// probability no link carries more than O(1) times the average load.
func ValiantMessages(q *hypercube.Q, perm []int, flits int, rng *rand.Rand) []*Message {
	msgs := make([]*Message, len(perm))
	for src, dst := range perm {
		mid := hypercube.Node(rng.Intn(q.Nodes()))
		route := ECubeRoute(q, hypercube.Node(src), mid)
		route = append(route, ECubeRoute(q, mid, hypercube.Node(dst))...)
		msgs[src] = &Message{Route: route, Flits: flits}
	}
	return msgs
}

// MaxLinkLoad returns the maximum number of messages whose route uses
// any single directed link — the static congestion that lower-bounds
// completion time.
func MaxLinkLoad(msgs []*Message) int {
	load := make(map[int]int)
	max := 0
	for _, m := range msgs {
		for _, id := range m.Route {
			load[id]++
			if load[id] > max {
				max = load[id]
			}
		}
	}
	return max
}

// BroadcastMessages models §8.1's large-copy broadcast: the source
// splits B flits into one chunk per directed Hamiltonian cycle of
// Lemma 1 and pipelines each chunk around its cycle, reaching every
// node. Completion under cut-through is (2^n - 1) + B/n - 1 steps,
// versus (2^n - 1) + B - 1 along a single cycle.
func BroadcastMessages(q *hypercube.Q, flits int, multi bool) ([]*Message, error) {
	dec, err := hamdecomp.Decompose(q.Dims())
	if err != nil {
		return nil, err
	}
	cycles := dec.Directed()
	if !multi {
		cycles = cycles[:1]
	}
	chunk := (flits + len(cycles) - 1) / len(cycles)
	var msgs []*Message
	for _, cyc := range cycles {
		route := make([]int, 0, len(cyc)-1)
		start := 0
		for i, v := range cyc {
			if v == 0 {
				start = i
				break
			}
		}
		for t := 0; t+1 < len(cyc); t++ {
			u := cyc[(start+t)%len(cyc)]
			v := cyc[(start+t+1)%len(cyc)]
			id, err := q.EdgeBetween(u, v)
			if err != nil {
				return nil, err
			}
			route = append(route, id)
		}
		msgs = append(msgs, &Message{Route: route, Flits: chunk})
	}
	return msgs, nil
}
