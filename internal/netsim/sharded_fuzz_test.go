package netsim

import (
	"reflect"
	"testing"
)

// FuzzSimulateSharded asserts sharded-vs-single-shard bit-identity
// over the same bounded input space as FuzzSimulateFaults (random
// route sets × random fault schedules, both buffering modes) at
// shards ∈ {2, 3, 8} — splits below, at, and above the 12-link fuzz
// id space, so clamping and near-empty shards are exercised too. The
// single-shard engines are the golden model; any divergence in
// Result, FaultResult, or Outcomes is a bug in the partitioning.
func FuzzSimulateSharded(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{3, 2, 1, 1, 4, 2, 1, 2, 5}, []byte{2, 1, 1, 0, 5, 9, 1})
	f.Add([]byte{7, 6, 0, 1, 2, 3, 4, 5, 8}, []byte{6, 0, 1, 0, 1, 1, 1, 2, 2, 0, 3, 3, 1, 9})
	f.Add([]byte{5, 1, 3, 2, 1, 3, 2, 1, 3, 2}, []byte{1, 3, 1, 0})
	f.Add([]byte{2, 2, 9, 9, 4, 2, 9, 9, 4}, []byte{2, 9, 2, 0, 9, 5, 1, 3})
	f.Fuzz(func(t *testing.T, routeData, schedData []byte) {
		msgs := decodeFuzzMessages(routeData)
		sched := decodeFuzzSchedule(schedData)
		for _, mode := range []Mode{StoreAndForward, CutThrough} {
			want, err := Simulate(msgs, mode)
			if err != nil {
				t.Fatalf("%v single: %v", mode, err)
			}
			wantF, err := SimulateFaults(msgs, mode, FaultOpts{Faults: sched})
			if err != nil {
				t.Fatalf("%v single faults: %v", mode, err)
			}
			for _, shards := range []int{2, 3, 8} {
				got, err := SimulateSharded(msgs, mode, shards)
				if err != nil {
					t.Fatalf("%v shards=%d: %v", mode, shards, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v shards=%d: %+v != single-shard %+v", mode, shards, got, want)
				}
				gotF, err := SimulateFaultsSharded(msgs, mode, FaultOpts{Faults: sched}, shards)
				if err != nil {
					t.Fatalf("%v shards=%d faults: %v", mode, shards, err)
				}
				if !reflect.DeepEqual(gotF, wantF) {
					t.Fatalf("%v shards=%d faults: %+v != single-shard %+v", mode, shards, gotF, wantF)
				}
			}
		}
	})
}
