package netsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"multipath/internal/faults"
	"multipath/internal/hypercube"
)

// shardCounts spans the interesting partition shapes: a two-way split,
// an odd split, more shards than a small run's links (clamping), and
// the benchmarked eight-way split.
var shardCounts = []int{2, 3, 8, 64}

// shardedWorkloads returns deterministic route sets covering the
// regimes the sharded engine must reproduce bit-for-bit: heavy
// permutation contention on a hypercube, sparse hand-built routes with
// shared links, empty routes, and single messages.
func shardedWorkloads() map[string][]*Message {
	q := hypercube.New(5)
	rng := rand.New(rand.NewSource(7))
	perm := RandomPermutation(rng, q.Nodes())
	w := map[string][]*Message{
		"permutation-q5": PermutationMessages(q, perm, 3),
		"chain": {
			{Route: []int{0, 1, 2, 3}, Flits: 5},
			{Route: []int{3, 2, 1, 0}, Flits: 5},
			{Route: []int{1, 2}, Flits: 2},
		},
		"shared-bottleneck": {
			{Route: []int{0, 9, 4}, Flits: 4},
			{Route: []int{1, 9, 5}, Flits: 4},
			{Route: []int{2, 9, 6}, Flits: 4},
			{Route: []int{3, 9, 7}, Flits: 4},
		},
		"empty-and-single": {
			{Route: nil, Flits: 1},
			{Route: []int{42}, Flits: 7},
			{Route: nil, Flits: 3},
		},
	}
	return w
}

// TestSimulateShardedEquivalence: for every workload, mode, and shard
// count, the sharded result must be bit-identical to Simulate's.
func TestSimulateShardedEquivalence(t *testing.T) {
	for name, msgs := range shardedWorkloads() {
		for _, mode := range []Mode{StoreAndForward, CutThrough} {
			want, err := Simulate(msgs, mode)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			for _, shards := range shardCounts {
				got, err := SimulateSharded(msgs, mode, shards)
				if err != nil {
					t.Fatalf("%s/%v/shards=%d: %v", name, mode, shards, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%v/shards=%d: %+v != single-shard %+v",
						name, mode, shards, got, want)
				}
			}
		}
	}
}

// shardedSchedules builds the fault scenarios exercised against every
// workload: a permanent mid-run kill, a transient stall, and a
// mixed schedule over the busiest links.
func shardedSchedules(msgs []*Message) map[string]*faults.Schedule {
	use := map[int]int{}
	for _, m := range msgs {
		for _, id := range m.Route {
			use[id]++
		}
	}
	ids := make([]int, 0, len(use))
	for id := range use {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if use[ids[i]] != use[ids[j]] {
			return use[ids[i]] > use[ids[j]]
		}
		return ids[i] < ids[j]
	})
	out := map[string]*faults.Schedule{"empty": faults.NewSchedule()}
	if len(ids) > 0 {
		out["perm-hot"] = faults.NewSchedule().FailLink(ids[0], 2)
		out["transient-hot"] = faults.NewSchedule().FailLinkTransient(ids[0], 1, 4)
	}
	if len(ids) > 2 {
		out["mixed"] = faults.NewSchedule().
			FailLink(ids[1], 3).
			FailLinkTransient(ids[2], 2, 6).
			FailLink(ids[0], 5)
	}
	return out
}

// TestSimulateFaultsShardedEquivalence: the sharded fault path must
// reproduce SimulateFaults bit-for-bit — Result, Outcomes, TimedOut —
// for permanent, transient, and mixed schedules at every shard count.
func TestSimulateFaultsShardedEquivalence(t *testing.T) {
	for name, msgs := range shardedWorkloads() {
		for schedName, sched := range shardedSchedules(msgs) {
			for _, mode := range []Mode{StoreAndForward, CutThrough} {
				opts := FaultOpts{Faults: sched}
				want, err := SimulateFaults(msgs, mode, opts)
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", name, schedName, mode, err)
				}
				for _, shards := range shardCounts {
					got, err := SimulateFaultsSharded(msgs, mode, opts, shards)
					if err != nil {
						t.Fatalf("%s/%s/%v/shards=%d: %v", name, schedName, mode, shards, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%s/%v/shards=%d: %+v != single-shard %+v",
							name, schedName, mode, shards, got, want)
					}
				}
			}
		}
	}
}

// TestShardedGracefulTimeoutEquivalence pins the StepLimit timeout
// path: both engines must mark the same messages failed at the same
// step and set TimedOut.
func TestShardedGracefulTimeoutEquivalence(t *testing.T) {
	msgs := shardedWorkloads()["shared-bottleneck"]
	opts := FaultOpts{StepLimit: 3}
	want, err := SimulateFaults(msgs, CutThrough, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !want.TimedOut {
		t.Fatalf("workload finished within %d steps; timeout path not exercised", opts.StepLimit)
	}
	for _, shards := range shardCounts {
		got, err := SimulateFaultsSharded(msgs, CutThrough, opts, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: %+v != %+v", shards, got, want)
		}
	}
}

// probeEvent is one recorded probe callback, keyed for canonical
// ordering: (step, phase, k1, k2) with stable order inside equal keys.
type probeEvent struct {
	step  int
	phase int // 0 moves, 1 kills, 2 deliveries, 3 step end
	k1    int
	k2    int
	kind  string
	qlen  []int
}

// traceProbe records the full event stream for comparison.
type traceProbe struct {
	info   RunInfo
	infoOK bool
	events []probeEvent
}

func (p *traceProbe) BeginRun(info RunInfo) {
	p.infoOK = true
	p.info = info
	p.info.LinkExt = append([]int(nil), info.LinkExt...)
}

func (p *traceProbe) StepEnd(step int, queueLen []int) {
	p.events = append(p.events, probeEvent{
		step: step, phase: 3, kind: "stepEnd",
		qlen: append([]int(nil), queueLen...),
	})
}

func (p *traceProbe) FlitMoved(step int, msg, link int32) {
	p.events = append(p.events, probeEvent{step: step, phase: 0, k1: int(link), k2: int(msg), kind: "move"})
}

func (p *traceProbe) FlitDelivered(step int, msg int32) {
	p.events = append(p.events, probeEvent{step: step, phase: 2, k1: int(msg), kind: "flit"})
}

func (p *traceProbe) FlitsDropped(step int, msg int32, flits int) {
	p.events = append(p.events, probeEvent{step: step, phase: 1, k1: int(msg), k2: flits, kind: "drop"})
}

func (p *traceProbe) MsgDone(step int, msg int32, delivered bool) {
	if delivered {
		p.events = append(p.events, probeEvent{step: step, phase: 2, k1: int(msg), k2: 1, kind: "done+"})
	} else {
		p.events = append(p.events, probeEvent{step: step, phase: 1, k1: int(msg), k2: 1 << 20, kind: "done-"})
	}
}

// canonical sorts the stream into the deterministic per-step order the
// sharded engine emits: within a step, moves by (link, msg), then the
// kill batch in stream order (it is already canonical in both
// engines), then deliveries by (msg, flit<done) pairs, then StepEnd.
func (p *traceProbe) canonical() []probeEvent {
	out := append([]probeEvent(nil), p.events...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.step != b.step {
			return a.step < b.step
		}
		if a.phase != b.phase {
			return a.phase < b.phase
		}
		if a.phase == 1 { // keep kill order as emitted
			return false
		}
		if a.k1 != b.k1 {
			return a.k1 < b.k1
		}
		return a.k2 < b.k2
	})
	return out
}

// TestShardedProbeStreamEquivalence: an attached probe must observe an
// event stream that canonicalizes to the single-shard engine's — same
// multiset of (step, args) per phase, same kill order, same queue
// samples — on both the fault-free and fault paths.
func TestShardedProbeStreamEquivalence(t *testing.T) {
	for name, msgs := range shardedWorkloads() {
		for schedName, sched := range shardedSchedules(msgs) {
			for _, mode := range []Mode{StoreAndForward, CutThrough} {
				ref := &traceProbe{}
				opts := FaultOpts{Faults: sched, Probe: ref}
				want, err := SimulateFaults(msgs, mode, opts)
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", name, schedName, mode, err)
				}
				wantEv := ref.canonical()
				for _, shards := range shardCounts {
					got := &traceProbe{}
					opts.Probe = got
					res, err := SimulateFaultsSharded(msgs, mode, opts, shards)
					if err != nil {
						t.Fatalf("%s/%s/%v/shards=%d: %v", name, schedName, mode, shards, err)
					}
					if !reflect.DeepEqual(res, want) {
						t.Fatalf("%s/%s/%v/shards=%d: probed result diverged", name, schedName, mode, shards)
					}
					gotEv := got.canonical()
					if !reflect.DeepEqual(gotEv, wantEv) {
						t.Errorf("%s/%s/%v/shards=%d: probe streams differ\n got %d events\nwant %d events\n%s",
							name, schedName, mode, shards, len(gotEv), len(wantEv),
							firstStreamDiff(gotEv, wantEv))
					}
				}
			}
		}
	}
}

func firstStreamDiff(got, want []probeEvent) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(got[i], want[i]) {
			return fmt.Sprintf("first diff at %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	return "streams are a prefix of one another"
}

// TestShardedProbedFaultFree covers SimulateShardedProbed (the
// fault-free probed entry point) against SimulateProbed.
func TestShardedProbedFaultFree(t *testing.T) {
	msgs := shardedWorkloads()["permutation-q5"]
	ref := &traceProbe{}
	want, err := SimulateProbed(msgs, CutThrough, ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardCounts {
		got := &traceProbe{}
		res, err := SimulateShardedProbed(msgs, CutThrough, shards, got)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("shards=%d: result diverged: %+v != %+v", shards, res, want)
		}
		if !reflect.DeepEqual(got.canonical(), ref.canonical()) {
			t.Errorf("shards=%d: probe streams differ: %s", shards,
				firstStreamDiff(got.canonical(), ref.canonical()))
		}
	}
}

// TestShardedStatsConservation checks the per-shard invariant on the
// fault-free path: every shard's moved flits equal its injected
// flit-hops (everything delivers), the shard link counts partition the
// link space, and the per-shard sums reproduce the global Result.
func TestShardedStatsConservation(t *testing.T) {
	msgs := shardedWorkloads()["permutation-q5"]
	want, err := Simulate(msgs, CutThrough)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 8} {
		res, stats, err := SimulateShardedStats(msgs, CutThrough, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("shards=%d: result diverged", shards)
		}
		sumMoved, sumLinks, sumBoundary := 0, 0, 0
		for k, st := range stats {
			if st.FlitsMoved+st.DroppedFlits != st.InjectedHops {
				t.Errorf("shards=%d shard %d: moved %d + dropped %d != injected %d",
					shards, k, st.FlitsMoved, st.DroppedFlits, st.InjectedHops)
			}
			sumMoved += st.FlitsMoved
			sumLinks += st.Links
			sumBoundary += st.BoundaryOut
		}
		if sumMoved != res.FlitsMoved {
			t.Errorf("shards=%d: shard moved sum %d != global %d", shards, sumMoved, res.FlitsMoved)
		}
		if shards > 1 && sumBoundary == 0 {
			t.Errorf("shards=%d: no boundary traffic on a permutation workload", shards)
		}
	}
}

// TestShardedStatsConservationWithFaults checks the generalized
// invariant moved+dropped == injected per shard under a killing
// schedule, via the internal run (the stats themselves are not part of
// the public fault API).
func TestShardedStatsConservationWithFaults(t *testing.T) {
	msgs := shardedWorkloads()["shared-bottleneck"]
	sched := faults.NewSchedule().FailLink(9, 2)
	sh := &sharded{e: NewEngine()}
	_, fr, stats, err := sh.run(msgs, CutThrough, FaultOpts{Faults: sched}, true, nil, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if fr.FailedMsgs == 0 {
		t.Fatal("schedule killed nothing; invariant not exercised")
	}
	sumInj, sumMoved, sumDropped := 0, 0, 0
	for k, st := range stats {
		if st.FlitsMoved+st.DroppedFlits != st.InjectedHops {
			t.Errorf("shard %d: moved %d + dropped %d != injected %d",
				k, st.FlitsMoved, st.DroppedFlits, st.InjectedHops)
		}
		sumInj += st.InjectedHops
		sumMoved += st.FlitsMoved
		sumDropped += st.DroppedFlits
	}
	wantHops := 0
	for _, m := range msgs {
		wantHops += m.Flits * len(m.Route)
	}
	if sumInj != wantHops || sumMoved != fr.FlitsMoved || sumDropped != fr.DroppedFlits {
		t.Errorf("global sums diverge: injected %d/%d moved %d/%d dropped %d/%d",
			sumInj, wantHops, sumMoved, fr.FlitsMoved, sumDropped, fr.DroppedFlits)
	}
}

// TestShardedPoolReuse runs different workloads back to back through
// the pooled sharded engine to catch stale cross-run state (rings,
// worklists, owner tables).
func TestShardedPoolReuse(t *testing.T) {
	wl := shardedWorkloads()
	order := []string{"permutation-q5", "empty-and-single", "shared-bottleneck", "permutation-q5", "chain"}
	for round := 0; round < 2; round++ {
		for _, name := range order {
			msgs := wl[name]
			want, err := Simulate(msgs, StoreAndForward)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SimulateSharded(msgs, StoreAndForward, 3)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d %s: %+v != %+v", round, name, got, want)
			}
		}
	}
}

// TestShardedErrorPaths pins the error contracts: invalid flits, the
// unbounded-schedule guard, and the probes/shards arity check.
func TestShardedErrorPaths(t *testing.T) {
	bad := []*Message{{Route: []int{0, 1}, Flits: 0}}
	if _, err := SimulateSharded(bad, CutThrough, 4); err == nil {
		t.Error("zero-flit message accepted")
	}
	msgs := shardedWorkloads()["chain"]
	if _, err := SimulateFaultsSharded(msgs, CutThrough, FaultOpts{Faults: &faults.PerStep{P: 0.5, Seed: 1}}, 4); err == nil {
		t.Error("unbounded schedule without StepLimit accepted")
	}
	if _, err := SimulateShardedProbes(msgs, CutThrough, 3, []Probe{&traceProbe{}}); err == nil {
		t.Error("probes/shards arity mismatch accepted")
	}
}

// TestNumberAllNoAllocs pins the shared numbering pass (satellite of
// the sharding work: Simulate, SimulateFaults, simulateWormhole, and
// the sharded engine all run through numberAll) to zero allocations on
// a warm engine.
func TestNumberAllNoAllocs(t *testing.T) {
	q := hypercube.New(4)
	rng := rand.New(rand.NewSource(3))
	msgs := PermutationMessages(q, RandomPermutation(rng, q.Nodes()), 2)
	e := NewEngine()
	if _, err := e.numberAll(msgs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.numberAll(msgs); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Errorf("numberAll allocates %v per run on a warm engine", allocs)
	}
}
