package core

import (
	"fmt"

	"multipath/internal/graph"
	"multipath/internal/hypercube"
)

// Construction helpers shared by the theorem packages.

// DirectCycleEmbedding embeds the L-node directed cycle (guest vertex i
// ↦ seq[i]) with one direct host edge per guest edge. seq must trace a
// cycle in the host: consecutive nodes (cyclically) adjacent. This is
// the shape of the classical Gray-code embedding (Figure 1) and of each
// copy in Lemma 1's multiple-copy embedding.
func DirectCycleEmbedding(q *hypercube.Q, seq []hypercube.Node) (*Embedding, error) {
	L := len(seq)
	if L < 2 {
		return nil, fmt.Errorf("core: cycle too short")
	}
	g := graph.New(L)
	for i := 0; i < L; i++ {
		g.AddEdge(int32(i), int32((i+1)%L))
	}
	e := &Embedding{
		Host:      q,
		Guest:     g,
		VertexMap: append([]hypercube.Node(nil), seq...),
		Paths:     make([][]Path, L),
	}
	for i := 0; i < L; i++ {
		e.Paths[i] = []Path{{seq[i], seq[(i+1)%L]}}
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// RouteDims builds the host path that starts at from and crosses the
// given dimensions in order.
func RouteDims(from hypercube.Node, dims ...int) Path {
	p := make(Path, 0, len(dims)+1)
	p = append(p, from)
	cur := from
	for _, d := range dims {
		cur ^= 1 << uint(d)
		p = append(p, cur)
	}
	return p
}

// GreedyAscendingPath routes from u to v by flipping differing
// dimensions in ascending order (the e-cube route). Its length is the
// Hamming distance between u and v.
func GreedyAscendingPath(q *hypercube.Q, u, v hypercube.Node) Path {
	p := Path{u}
	cur := u
	for d := 0; d < q.Dims(); d++ {
		if (cur^v)&(1<<uint(d)) != 0 {
			cur ^= 1 << uint(d)
			p = append(p, cur)
		}
	}
	return p
}

// DisjointPaths returns n edge-disjoint paths of length ≤ 2 + distance
// between distinct hypercube nodes u, v — the classical construction
// used by the fault-tolerance example: path i first crosses a rotation
// of the differing dimensions (a distinct first dimension per path),
// then, if i exceeds the Hamming distance, detours through a non-
// differing dimension and back.
func DisjointPaths(q *hypercube.Q, u, v hypercube.Node) []Path {
	n := q.Dims()
	diff := u ^ v
	var dims, rest []int
	for d := 0; d < n; d++ {
		if diff&(1<<uint(d)) != 0 {
			dims = append(dims, d)
		} else {
			rest = append(rest, d)
		}
	}
	paths := make([]Path, 0, n)
	k := len(dims)
	// k rotations of the differing dimensions: path i crosses
	// dims[i], dims[i+1], ..., wrapping. All edge-disjoint.
	for i := 0; i < k; i++ {
		order := make([]int, 0, k)
		for t := 0; t < k; t++ {
			order = append(order, dims[(i+t)%k])
		}
		paths = append(paths, RouteDims(u, order...))
	}
	// n-k detour paths: cross a non-differing dimension d, then all
	// differing dimensions (in rotation-invariant order), then d back.
	for _, d := range rest {
		order := make([]int, 0, k+2)
		order = append(order, d)
		order = append(order, dims...)
		order = append(order, d)
		paths = append(paths, RouteDims(u, order...))
	}
	return paths
}

// Widen replaces every single-path, dilation-1 edge of an embedding
// with up to w of the classical edge-disjoint paths between its
// endpoints (DisjointPaths). The result has per-edge width w — but
// nothing coordinates paths *across* edges, so neighboring edges'
// detours collide and the congestion (and with it the packet cost)
// grows with w. This is the naive foil to Theorem 1, which chooses
// detours globally so that the same width costs only 3 steps.
func Widen(e *Embedding, w int) (*Embedding, error) {
	if w < 1 || w > e.Host.Dims() {
		return nil, fmt.Errorf("core: width %d outside [1, n]", w)
	}
	out := &Embedding{
		Host:      e.Host,
		Guest:     e.Guest,
		VertexMap: e.VertexMap,
		Paths:     make([][]Path, len(e.Paths)),
	}
	for i, ps := range e.Paths {
		if len(ps) != 1 || len(ps[0]) != 2 {
			return nil, fmt.Errorf("core: edge %d is not a single direct path", i)
		}
		paths := DisjointPaths(e.Host, ps[0][0], ps[0][1])
		if len(paths) < w {
			return nil, fmt.Errorf("core: only %d disjoint paths available", len(paths))
		}
		out.Paths[i] = paths[:w]
	}
	return out, nil
}
