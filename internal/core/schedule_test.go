package core

import (
	"testing"

	"multipath/internal/graph"
	"multipath/internal/hypercube"
)

func twoPathEmbedding(t *testing.T) *Embedding {
	t.Helper()
	q := hypercube.New(3)
	g := graph.New(2)
	g.AddEdge(0, 1)
	e := &Embedding{
		Host:      q,
		Guest:     g,
		VertexMap: []hypercube.Node{0, 1},
		Paths: [][]Path{{
			RouteDims(0, 0),       // direct
			RouteDims(0, 1, 0, 1), // detour via dim 1
		}},
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestUniformLaunchesMatchSynchronized(t *testing.T) {
	e := twoPathEmbedding(t)
	c1, err := e.SynchronizedCost()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e.ScheduleCost(e.UniformLaunches())
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("synchronized %d vs uniform schedule %d", c1, c2)
	}
}

func TestScheduleCostOffsets(t *testing.T) {
	e := twoPathEmbedding(t)
	// A second packet on the direct path at step 2 extends the cost.
	launches := e.UniformLaunches()
	launches[0] = append(launches[0], Launch{Path: 0, Start: 3})
	c, err := e.ScheduleCost(launches)
	if err != nil {
		t.Fatal(err)
	}
	if c != 4 {
		t.Errorf("cost %d, want 4", c)
	}
}

func TestScheduleCostDetectsCollision(t *testing.T) {
	e := twoPathEmbedding(t)
	launches := e.UniformLaunches()
	// Duplicate launch of the direct path at the same step collides.
	launches[0] = append(launches[0], Launch{Path: 0, Start: 0})
	if _, err := e.ScheduleCost(launches); err == nil {
		t.Error("colliding launches accepted")
	}
}

func TestScheduleCostValidation(t *testing.T) {
	e := twoPathEmbedding(t)
	if _, err := e.ScheduleCost(nil); err == nil {
		t.Error("wrong launch set count accepted")
	}
	bad := e.UniformLaunches()
	bad[0][0].Path = 7
	if _, err := e.ScheduleCost(bad); err == nil {
		t.Error("out-of-range path accepted")
	}
	bad2 := e.UniformLaunches()
	bad2[0][0].Start = -1
	if _, err := e.ScheduleCost(bad2); err == nil {
		t.Error("negative start accepted")
	}
}

func TestStepUtilization(t *testing.T) {
	e := twoPathEmbedding(t)
	su, err := e.StepUtilization()
	if err != nil {
		t.Fatal(err)
	}
	if len(su) != 3 {
		t.Fatalf("%d steps", len(su))
	}
	// 24 directed edges in Q_3; step 1 uses 2 (direct + detour first),
	// steps 2 and 3 one each.
	if su[0] != 2.0/24 || su[1] != 1.0/24 || su[2] != 1.0/24 {
		t.Errorf("utilization %v", su)
	}
}

func TestOnePacketBoundsSinglePathUsesCongestion(t *testing.T) {
	// Two guest edges sharing one host edge: congestion 2 raises the
	// single-path lower bound above the dilation.
	q := hypercube.New(3)
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	e := &Embedding{
		Host:      q,
		Guest:     g,
		VertexMap: []hypercube.Node{0, 1, 0},
		Paths: [][]Path{
			{{0, 1}},
			{{0, 1}},
		},
	}
	lo, hi, err := e.OnePacketCostBounds()
	if err != nil {
		t.Fatal(err)
	}
	if lo != 2 || hi != 2 {
		t.Errorf("bounds %d/%d, want 2/2", lo, hi)
	}
	got, err := e.PPacketCost(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("measured %d", got)
	}
}

func TestMultiCopyValidateHostMismatch(t *testing.T) {
	q1 := hypercube.New(3)
	q2 := hypercube.New(3)
	g := graph.New(2)
	g.AddEdge(0, 1)
	mk := func(q *hypercube.Q) *Embedding {
		return &Embedding{
			Host:      q,
			Guest:     g,
			VertexMap: []hypercube.Node{0, 1},
			Paths:     [][]Path{{{0, 1}}},
		}
	}
	mc := &MultiCopy{Host: q1, Copies: []*Embedding{mk(q1), mk(q2)}}
	if err := mc.Validate(); err == nil {
		t.Error("host mismatch accepted")
	}
	// Guest shape mismatch.
	g2 := graph.New(3)
	g2.AddEdge(0, 1)
	other := &Embedding{Host: q1, Guest: g2, VertexMap: []hypercube.Node{0, 1, 2}, Paths: [][]Path{{{0, 1}}}}
	mc2 := &MultiCopy{Host: q1, Copies: []*Embedding{mk(q1), other}}
	if err := mc2.Validate(); err == nil {
		t.Error("guest shape mismatch accepted")
	}
}
