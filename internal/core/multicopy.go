package core

import (
	"fmt"
	"sync/atomic"

	"multipath/internal/hypercube"
)

// MultiCopy is a k-copy embedding (§3): a collection of one-to-one
// embeddings of the same guest graph into the same host. Its
// edge-congestion sums the per-copy congestion on every host edge.
type MultiCopy struct {
	Host   *hypercube.Q
	Copies []*Embedding
}

// Validate checks every copy: structurally valid, one-to-one, same host
// and guest shape (vertex and edge counts).
func (m *MultiCopy) Validate() error {
	if len(m.Copies) == 0 {
		return fmt.Errorf("multicopy: no copies")
	}
	first := m.Copies[0]
	for k, c := range m.Copies {
		if c.Host != m.Host {
			return fmt.Errorf("multicopy: copy %d has a different host", k)
		}
		if c.Guest.N() != first.Guest.N() || c.Guest.M() != first.Guest.M() {
			return fmt.Errorf("multicopy: copy %d guest shape differs", k)
		}
		if err := c.Validate(); err != nil {
			return fmt.Errorf("multicopy: copy %d: %w", k, err)
		}
		if !c.OneToOne() {
			return fmt.Errorf("multicopy: copy %d is not one-to-one", k)
		}
	}
	return nil
}

// EdgeCongestion returns the maximum, over directed host edges, of the
// total number of guest-edge paths (across all copies) using that edge.
//
// Counts accumulate across every copy's cached routes into one pooled
// counter slice; the max-scan then re-zeroes exactly the touched
// entries (atomic swap, first visit wins) so warm calls allocate
// nothing.
func (m *MultiCopy) EdgeCongestion() (int, error) {
	rcs := make([]*routeCache, len(m.Copies))
	for k, c := range m.Copies {
		rc, err := c.routes()
		if err != nil {
			return 0, fmt.Errorf("multicopy: copy %d: %w", k, err)
		}
		rcs[k] = rc
	}
	cp := getCounts(m.Host.DirectedEdges())
	defer putCounts(cp)
	counts := *cp
	for _, rc := range rcs {
		ids := rc.ids
		parallelFor(len(ids), 4096, func(lo, hi int) {
			for _, id := range ids[lo:hi] {
				atomic.AddInt32(&counts[id], 1)
			}
		})
	}
	var maxA int64
	for _, rc := range rcs {
		ids := rc.ids
		parallelFor(len(ids), 4096, func(lo, hi int) {
			localMax := int64(0)
			for _, id := range ids[lo:hi] {
				if c := int64(atomic.SwapInt32(&counts[id], 0)); c > localMax {
					localMax = c
				}
			}
			for {
				old := atomic.LoadInt64(&maxA)
				if localMax <= old || atomic.CompareAndSwapInt64(&maxA, old, localMax) {
					break
				}
			}
		})
	}
	return int(maxA), nil
}

// Dilation returns the maximum dilation over all copies.
func (m *MultiCopy) Dilation() int {
	max := 0
	for _, c := range m.Copies {
		if d := c.Dilation(); d > max {
			max = d
		}
	}
	return max
}

// NodeLoad returns the maximum number of guest vertices (across all
// copies) hosted by one hypercube node. A k-copy embedding has node
// load at most k, exactly k when the copies tile the host.
func (m *MultiCopy) NodeLoad() int {
	counts := make([]int, m.Host.Nodes())
	max := 0
	for _, c := range m.Copies {
		for _, h := range c.VertexMap {
			counts[h]++
			if counts[h] > max {
				max = counts[h]
			}
		}
	}
	return max
}
