package core

import "fmt"

// Reference implementations of the metric verifiers, preserved verbatim
// from the original map-based code. They are the golden models for the
// dense engine's equivalence tests, the baseline the BENCH_construct
// speedup is measured against, and — because they scan paths in the
// original (guest edge, path, step) order — the source of exact error
// messages when a dense pass detects a violation: the fast paths below
// delegate to them whenever something is wrong, so error text and
// ordering are bit-identical to the pre-dense behaviour.

// validateReference is the original serial Validate.
func (e *Embedding) validateReference() error {
	if len(e.VertexMap) != e.Guest.N() {
		return fmt.Errorf("embedding: vertex map covers %d of %d guest vertices", len(e.VertexMap), e.Guest.N())
	}
	for v, h := range e.VertexMap {
		if !e.Host.Contains(h) {
			return fmt.Errorf("embedding: vertex %d mapped outside host: %d", v, h)
		}
	}
	if len(e.Paths) != e.Guest.M() {
		return fmt.Errorf("embedding: %d path sets for %d guest edges", len(e.Paths), e.Guest.M())
	}
	for i, ps := range e.Paths {
		ge := e.Guest.Edge(i)
		from, to := e.VertexMap[ge.U], e.VertexMap[ge.V]
		if len(ps) == 0 {
			return fmt.Errorf("embedding: guest edge %d has no paths", i)
		}
		for j, p := range ps {
			if len(p) == 0 {
				return fmt.Errorf("embedding: guest edge %d path %d empty", i, j)
			}
			if _, err := e.Host.CheckPath(p); err != nil {
				return fmt.Errorf("embedding: guest edge %d path %d: %w", i, j, err)
			}
			if p[0] != from || p[len(p)-1] != to {
				return fmt.Errorf("embedding: guest edge %d path %d connects %d→%d, want %d→%d",
					i, j, p[0], p[len(p)-1], from, to)
			}
		}
	}
	return nil
}

// WidthReference is the original map-based Width: it verifies per-edge
// path disjointness with a hash set and returns the minimum path count.
func (e *Embedding) WidthReference() (int, error) {
	width := -1
	for i, ps := range e.Paths {
		seen := make(map[int]int)
		for j, p := range ps {
			ids, err := e.Host.PathEdgeIDs(p)
			if err != nil {
				return 0, fmt.Errorf("embedding: guest edge %d path %d: %w", i, j, err)
			}
			for _, id := range ids {
				if prev, dup := seen[id]; dup {
					ed := e.Host.EdgeOf(id)
					return 0, fmt.Errorf("embedding: guest edge %d: paths %d and %d share host edge (%d,dim %d)",
						i, prev, j, ed.From, ed.Dim)
				}
				seen[id] = j
			}
		}
		if width < 0 || len(ps) < width {
			width = len(ps)
		}
	}
	if width < 0 {
		width = 0
	}
	return width, nil
}

// SynchronizedCostReference is the original map-based SynchronizedCost:
// a (edge, step) hash map scanned in (guest edge, path, step) order.
func (e *Embedding) SynchronizedCostReference() (int, error) {
	type slot struct {
		edge, step int
	}
	seen := make(map[slot][2]int) // -> (guest edge, path index)
	cost := 0
	for i, ps := range e.Paths {
		for j, p := range ps {
			ids, err := e.Host.PathEdgeIDs(p)
			if err != nil {
				return 0, err
			}
			if len(ids) > cost {
				cost = len(ids)
			}
			for t, id := range ids {
				s := slot{id, t}
				if prev, dup := seen[s]; dup {
					ed := e.Host.EdgeOf(id)
					return 0, fmt.Errorf("core: step %d: host edge (%d,dim %d) claimed by guest edge %d path %d and guest edge %d path %d",
						t+1, ed.From, ed.Dim, prev[0], prev[1], i, j)
				}
				seen[s] = [2]int{i, j}
			}
		}
	}
	return cost, nil
}
