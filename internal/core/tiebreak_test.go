package core_test

// Hand-computed regression tests pinning PPacketCost's contention
// discipline: each directed host edge serves packets FIFO by arrival
// step, with same-step ties broken by injection order (guest edge
// order, then path round-robin order). The scenarios are small enough
// to trace by hand and are constructed so that any other discipline
// yields a different total cost.

import (
	"testing"

	"multipath/internal/core"
	"multipath/internal/graph"
	"multipath/internal/hypercube"
)

// tiebreakEmbedding builds a Q_3 embedding with one single-path guest
// edge per entry of paths, in order.
func tiebreakEmbedding(t *testing.T, paths []core.Path) *core.Embedding {
	t.Helper()
	g := graph.New(2 * len(paths))
	vm := make([]hypercube.Node, 2*len(paths))
	e := &core.Embedding{Host: hypercube.New(3), Guest: g, VertexMap: vm}
	for i, p := range paths {
		g.AddEdge(int32(2*i), int32(2*i+1))
		vm[2*i], vm[2*i+1] = p[0], p[len(p)-1]
		e.Paths = append(e.Paths, []core.Path{p})
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPPacketCostTieBreakInjectionOrder: two packets start queued on
// the same directed edge 0→1 at step 1. Injection order says the
// short, earlier-injected packet (guest edge 0) crosses first:
//
//	step 1: pkt0 crosses 0→1 (done);   pkt1 waits
//	step 2: pkt1 crosses 0→1
//	step 3: pkt1 crosses 1→3 (done)    → cost 3
//
// Serving pkt1 first instead would finish everything in 2 steps, so
// cost 3 is witnessed only by the injection-order tie-break.
func TestPPacketCostTieBreakInjectionOrder(t *testing.T) {
	e := tiebreakEmbedding(t, []core.Path{
		{0, 1},
		{0, 1, 3},
	})
	got, err := e.PPacketCost(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("PPacketCost(1) = %d, want 3 (injection-order tie-break)", got)
	}
}

// TestPPacketCostFIFOByArrival: three packets contend for edge 0→1.
// pkt1 and pkt2 start there (arrival step 0); pkt0 — the lowest
// injection id — arrives only at step 1 after crossing 2→0:
//
//	step 1: pkt1 crosses 0→1 (tie with pkt2 → injection order);
//	        pkt0 crosses 2→0, joins the 0→1 queue
//	step 2: pkt2 crosses 0→1 (arrived step 0, beats pkt0's step 1
//	        even though pkt0 has the lower id); pkt1 crosses 1→3 (done)
//	step 3: pkt0 crosses 0→1 (done); pkt2 crosses 1→5 (done) → cost 3
//
// A discipline preferring the lower id over the earlier arrival would
// send pkt0 at step 2 and finish pkt2 only at step 4.
func TestPPacketCostFIFOByArrival(t *testing.T) {
	e := tiebreakEmbedding(t, []core.Path{
		{2, 0, 1},
		{0, 1, 3},
		{0, 1, 5},
	})
	got, err := e.PPacketCost(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("PPacketCost(1) = %d, want 3 (FIFO by arrival step)", got)
	}
}

// TestPPacketCostRoundRobinOverPaths: one guest edge, two disjoint
// paths of lengths 1 and 3, p = 3 packets. Round-robin assigns packets
// 0 and 2 to the short path and packet 1 to the long one:
//
//	step 1: pkt0 crosses 0→1 (done); pkt1 crosses 0→2
//	step 2: pkt2 crosses 0→1 (done); pkt1 crosses 2→3
//	step 3: pkt1 crosses 3→1 (done)                     → cost 3
//
// Assigning two packets to the long path instead would cost 4.
func TestPPacketCostRoundRobinOverPaths(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	e := &core.Embedding{
		Host:      hypercube.New(3),
		Guest:     g,
		VertexMap: []hypercube.Node{0, 1},
		Paths:     [][]core.Path{{{0, 1}, {0, 2, 3, 1}}},
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := e.PPacketCost(3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("PPacketCost(3) = %d, want 3 (round-robin path assignment)", got)
	}
}
