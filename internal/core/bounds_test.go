package core_test

// Cross-construction invariant: for every embedding the library builds,
// the measured one-packet cost lies within the §3 sandwich
// max(dilation, congestion) ≤ cost ≤ dilation · congestion.

import (
	"testing"

	"multipath/internal/ccc"
	"multipath/internal/core"
	"multipath/internal/cycles"
)

func checkBounds(t *testing.T, name string, e *core.Embedding) {
	t.Helper()
	lo, hi, err := e.OnePacketCostBounds()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	got, err := e.PPacketCost(1)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if got < lo || got > hi {
		t.Errorf("%s: one-packet cost %d outside [%d, %d]", name, got, lo, hi)
	}
}

func TestOnePacketSandwichAcrossConstructions(t *testing.T) {
	if e, err := cycles.GrayCode(6); err == nil {
		checkBounds(t, "graycode", e)
	} else {
		t.Error(err)
	}
	if e, err := cycles.Theorem1(8); err == nil {
		checkBounds(t, "theorem1", e)
	} else {
		t.Error(err)
	}
	if e, err := cycles.Theorem2(8); err == nil {
		checkBounds(t, "theorem2", e)
	} else {
		t.Error(err)
	}
	if e, err := ccc.GHREmbed(6); err == nil {
		checkBounds(t, "ghr", e)
	} else {
		t.Error(err)
	}
	if e, err := ccc.LargeCopyCCC(6); err == nil {
		checkBounds(t, "largecopy-ccc", e)
	} else {
		t.Error(err)
	}
	if e, err := ccc.LargeCopyCycle(6); err == nil {
		checkBounds(t, "largecopy-cycle", e)
	} else {
		t.Error(err)
	}
}
