package core

import "fmt"

// Launch plans one packet: it enters path Path of its guest edge at the
// beginning of step Start+1 and advances one hop per step with no
// queueing.
type Launch struct {
	Path  int
	Start int
}

// ScheduleCost verifies an explicit launch plan: launches[i] lists the
// packets sent for guest edge i. Every packet must fit its path with no
// two packets crossing the same directed host edge in the same step;
// the returned cost is the step in which the last packet arrives.
//
// This checks the paper's refined claims exactly — e.g. Theorem 1's
// (2k+2)-packet cost 3 schedule sends a second packet down each direct
// edge at step 3, a slot the greedy simulator of PPacketCost does not
// discover on its own.
//
// Path ids come from the shared route cache; the occupancy map packs
// (edge, step) into one int64 key, so the check costs one map insert
// per packet-hop and no per-path id derivation.
func (e *Embedding) ScheduleCost(launches [][]Launch) (int, error) {
	if len(launches) != len(e.Paths) {
		return 0, fmt.Errorf("core: %d launch sets for %d guest edges", len(launches), len(e.Paths))
	}
	rc, err := e.routes()
	if err != nil {
		return 0, err
	}
	seen := make(map[int64][2]int32) // edge<<32|step -> (guest edge, launch index)
	cost := 0
	for i, ls := range launches {
		for li, l := range ls {
			if l.Path < 0 || l.Path >= len(e.Paths[i]) {
				return 0, fmt.Errorf("core: guest edge %d launch %d: path %d out of range", i, li, l.Path)
			}
			if l.Start < 0 {
				return 0, fmt.Errorf("core: guest edge %d launch %d: negative start", i, li)
			}
			ids := rc.pathIDs(rc.edgeOff[i] + int32(l.Path))
			for t, id := range ids {
				key := int64(id)<<32 | int64(l.Start+t)
				if prev, dup := seen[key]; dup {
					ed := e.Host.EdgeOf(int(id))
					return 0, fmt.Errorf("core: step %d: host edge (%d,dim %d) claimed by guest edge %d and guest edge %d",
						l.Start+t+1, ed.From, ed.Dim, prev[0], i)
				}
				seen[key] = [2]int32{int32(i), int32(li)}
			}
			if end := l.Start + len(ids); end > cost {
				cost = end
			}
		}
	}
	return cost, nil
}

// UniformLaunches builds the plan that sends one packet on every path
// of every guest edge at step 1 — the plan SynchronizedCost checks.
func (e *Embedding) UniformLaunches() [][]Launch {
	out := make([][]Launch, len(e.Paths))
	for i, ps := range e.Paths {
		ls := make([]Launch, len(ps))
		for j := range ps {
			ls[j] = Launch{Path: j}
		}
		out[i] = ls
	}
	return out
}
