// Package core defines the embedding abstractions of Greenberg & Bhatt
// §3 — one-to-one and many-to-one embeddings, multiple-path (width-w)
// embeddings, and multiple-copy embeddings — together with independent
// verifiers for every metric the paper bounds: load, dilation,
// congestion, width (edge-disjointness), and packet cost under the
// paper's unit-capacity step model.
//
// Constructors in other packages (Theorem 1, Theorem 2, Theorem 3, ...)
// return these structures; tests never trust a constructor's claimed
// metrics but re-derive them here.
package core

import (
	"fmt"

	"multipath/internal/graph"
	"multipath/internal/hypercube"
)

// Path is a host path: a sequence of hypercube nodes in which
// consecutive entries are neighbors. A single node is a legal
// (length-0) path only as the image of a guest edge whose endpoints
// are co-located under a many-to-one map.
type Path []hypercube.Node

// Embedding maps a guest graph into a hypercube host. VertexMap[v] is
// the host image of guest vertex v (many-to-one allowed); Paths[i] is
// the set of host paths assigned to the i-th guest edge (parallel to
// Guest.Edges()). A classical embedding has exactly one path per edge;
// a width-w multiple-path embedding has w edge-disjoint paths per edge.
type Embedding struct {
	Host      *hypercube.Q
	Guest     *graph.Graph
	VertexMap []hypercube.Node
	Paths     [][]Path
}

// Validate checks structural integrity: vertex map in range, one path
// set per guest edge, every path a valid hypercube path connecting the
// images of its edge's endpoints.
func (e *Embedding) Validate() error {
	if len(e.VertexMap) != e.Guest.N() {
		return fmt.Errorf("embedding: vertex map covers %d of %d guest vertices", len(e.VertexMap), e.Guest.N())
	}
	for v, h := range e.VertexMap {
		if !e.Host.Contains(h) {
			return fmt.Errorf("embedding: vertex %d mapped outside host: %d", v, h)
		}
	}
	if len(e.Paths) != e.Guest.M() {
		return fmt.Errorf("embedding: %d path sets for %d guest edges", len(e.Paths), e.Guest.M())
	}
	for i, ps := range e.Paths {
		ge := e.Guest.Edge(i)
		from, to := e.VertexMap[ge.U], e.VertexMap[ge.V]
		if len(ps) == 0 {
			return fmt.Errorf("embedding: guest edge %d has no paths", i)
		}
		for j, p := range ps {
			if len(p) == 0 {
				return fmt.Errorf("embedding: guest edge %d path %d empty", i, j)
			}
			if _, err := e.Host.CheckPath(p); err != nil {
				return fmt.Errorf("embedding: guest edge %d path %d: %w", i, j, err)
			}
			if p[0] != from || p[len(p)-1] != to {
				return fmt.Errorf("embedding: guest edge %d path %d connects %d→%d, want %d→%d",
					i, j, p[0], p[len(p)-1], from, to)
			}
		}
	}
	return nil
}

// Load returns the maximum number of guest vertices mapped to one host
// node.
func (e *Embedding) Load() int {
	counts := make([]int, e.Host.Nodes())
	max := 0
	for _, h := range e.VertexMap {
		counts[h]++
		if counts[h] > max {
			max = counts[h]
		}
	}
	return max
}

// Dilation returns the maximum path length over all paths of all guest
// edges.
func (e *Embedding) Dilation() int {
	max := 0
	for _, ps := range e.Paths {
		for _, p := range ps {
			if len(p)-1 > max {
				max = len(p) - 1
			}
		}
	}
	return max
}

// MinDilation returns, maximized over guest edges, the length of the
// edge's shortest assigned path — the latency floor when only the best
// path is used.
func (e *Embedding) MinDilation() int {
	max := 0
	for _, ps := range e.Paths {
		best := -1
		for _, p := range ps {
			if best < 0 || len(p)-1 < best {
				best = len(p) - 1
			}
		}
		if best > max {
			max = best
		}
	}
	return max
}

// Width verifies that every guest edge's paths are pairwise
// edge-disjoint and returns the minimum number of paths assigned to any
// guest edge. An error identifies the first overlap found.
func (e *Embedding) Width() (int, error) {
	width := -1
	for i, ps := range e.Paths {
		seen := make(map[int]int)
		for j, p := range ps {
			ids, err := e.Host.PathEdgeIDs(p)
			if err != nil {
				return 0, fmt.Errorf("embedding: guest edge %d path %d: %w", i, j, err)
			}
			for _, id := range ids {
				if prev, dup := seen[id]; dup {
					ed := e.Host.EdgeOf(id)
					return 0, fmt.Errorf("embedding: guest edge %d: paths %d and %d share host edge (%d,dim %d)",
						i, prev, j, ed.From, ed.Dim)
				}
				seen[id] = j
			}
		}
		if width < 0 || len(ps) < width {
			width = len(ps)
		}
	}
	if width < 0 {
		width = 0
	}
	return width, nil
}

// Congestion returns the maximum, over directed host edges, of the
// number of guest-edge paths whose image contains that edge (§3: for a
// width-w embedding each guest edge contributes at most once per host
// edge because its paths are edge-disjoint).
func (e *Embedding) Congestion() (int, error) {
	counts := make([]int, e.Host.DirectedEdges())
	for _, ps := range e.Paths {
		for _, p := range ps {
			ids, err := e.Host.PathEdgeIDs(p)
			if err != nil {
				return 0, err
			}
			for _, id := range ids {
				counts[id]++
			}
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max, nil
}

// LinkUtilization returns the fraction of directed host edges used by
// at least one path. Theorem 1 uses about half the links; Theorem 2
// with n ≡ 0 (mod 4) uses all of them.
func (e *Embedding) LinkUtilization() (float64, error) {
	counts := make([]bool, e.Host.DirectedEdges())
	used := 0
	for _, ps := range e.Paths {
		for _, p := range ps {
			ids, err := e.Host.PathEdgeIDs(p)
			if err != nil {
				return 0, err
			}
			for _, id := range ids {
				if !counts[id] {
					counts[id] = true
					used++
				}
			}
		}
	}
	return float64(used) / float64(e.Host.DirectedEdges()), nil
}

// OneToOne reports whether the vertex map is injective.
func (e *Embedding) OneToOne() bool {
	seen := make([]bool, e.Host.Nodes())
	for _, h := range e.VertexMap {
		if seen[h] {
			return false
		}
		seen[h] = true
	}
	return true
}
