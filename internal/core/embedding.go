// Package core defines the embedding abstractions of Greenberg & Bhatt
// §3 — one-to-one and many-to-one embeddings, multiple-path (width-w)
// embeddings, and multiple-copy embeddings — together with independent
// verifiers for every metric the paper bounds: load, dilation,
// congestion, width (edge-disjointness), and packet cost under the
// paper's unit-capacity step model.
//
// Constructors in other packages (Theorem 1, Theorem 2, Theorem 3, ...)
// return these structures; tests never trust a constructor's claimed
// metrics but re-derive them here.
//
// The verifiers share a dense route cache (see routecache.go): every
// path's host-edge ids are computed once into a flat int32 arena, and
// the metrics run as parallel passes over it with pooled scratch, so a
// warm verification allocates almost nothing. The original map-based
// verifiers survive in reference.go as golden models.
package core

import (
	"fmt"
	"slices"
	"sync/atomic"

	"multipath/internal/graph"
	"multipath/internal/hypercube"
)

// Path is a host path: a sequence of hypercube nodes in which
// consecutive entries are neighbors. A single node is a legal
// (length-0) path only as the image of a guest edge whose endpoints
// are co-located under a many-to-one map.
type Path []hypercube.Node

// Embedding maps a guest graph into a hypercube host. VertexMap[v] is
// the host image of guest vertex v (many-to-one allowed); Paths[i] is
// the set of host paths assigned to the i-th guest edge (parallel to
// Guest.Edges()). A classical embedding has exactly one path per edge;
// a width-w multiple-path embedding has w edge-disjoint paths per edge.
//
// Embeddings may be mutated freely between metric calls: the cached
// route form is fingerprinted and rebuilt when the paths change.
type Embedding struct {
	Host      *hypercube.Q
	Guest     *graph.Graph
	VertexMap []hypercube.Node
	Paths     [][]Path

	rc *routeCache // dense route form; nil until first metric call
}

// Validate checks structural integrity: vertex map in range, one path
// set per guest edge, every path a valid hypercube path connecting the
// images of its edge's endpoints.
func (e *Embedding) Validate() error {
	if len(e.VertexMap) != e.Guest.N() {
		return fmt.Errorf("embedding: vertex map covers %d of %d guest vertices", len(e.VertexMap), e.Guest.N())
	}
	for v, h := range e.VertexMap {
		if !e.Host.Contains(h) {
			return fmt.Errorf("embedding: vertex %d mapped outside host: %d", v, h)
		}
	}
	if len(e.Paths) != e.Guest.M() {
		return fmt.Errorf("embedding: %d path sets for %d guest edges", len(e.Paths), e.Guest.M())
	}
	if _, err := e.routes(); err != nil {
		return e.validateReference()
	}
	var bad atomic.Bool
	parallelFor(len(e.Paths), 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ps := e.Paths[i]
			if len(ps) == 0 {
				bad.Store(true)
				return
			}
			ge := e.Guest.Edge(i)
			from, to := e.VertexMap[ge.U], e.VertexMap[ge.V]
			for _, p := range ps {
				if p[0] != from || p[len(p)-1] != to {
					bad.Store(true)
					return
				}
			}
		}
	})
	if bad.Load() {
		return e.validateReference()
	}
	return nil
}

// Load returns the maximum number of guest vertices mapped to one host
// node.
func (e *Embedding) Load() int {
	counts := make([]int, e.Host.Nodes())
	max := 0
	for _, h := range e.VertexMap {
		counts[h]++
		if counts[h] > max {
			max = counts[h]
		}
	}
	return max
}

// Dilation returns the maximum path length over all paths of all guest
// edges.
func (e *Embedding) Dilation() int {
	max := 0
	for _, ps := range e.Paths {
		for _, p := range ps {
			if len(p)-1 > max {
				max = len(p) - 1
			}
		}
	}
	return max
}

// MinDilation returns, maximized over guest edges, the length of the
// edge's shortest assigned path — the latency floor when only the best
// path is used.
func (e *Embedding) MinDilation() int {
	max := 0
	for _, ps := range e.Paths {
		best := -1
		for _, p := range ps {
			if best < 0 || len(p)-1 < best {
				best = len(p) - 1
			}
		}
		if best > max {
			max = best
		}
	}
	return max
}

// Width verifies that every guest edge's paths are pairwise
// edge-disjoint and returns the minimum number of paths assigned to any
// guest edge. An error identifies the first overlap found.
//
// The check runs in parallel over guest edges: each worker sorts the
// edge's cached ids into pooled scratch and scans for an adjacent
// duplicate, so no per-call maps are built. On any violation the
// reference implementation re-derives the exact original error.
func (e *Embedding) Width() (int, error) {
	rc, err := e.routes()
	if err != nil {
		return e.WidthReference()
	}
	m := len(e.Paths)
	var dup atomic.Bool
	parallelFor(m, 16, func(lo, hi int) {
		sp := getScratch(64)
		defer putScratch(sp)
		for i := lo; i < hi; i++ {
			ids := rc.edgeIDs(i)
			if len(ids) < 2 {
				continue
			}
			s := append((*sp)[:0], ids...)
			slices.Sort(s)
			for k := 1; k < len(s); k++ {
				if s[k] == s[k-1] {
					dup.Store(true)
					*sp = s
					return
				}
			}
			*sp = s
		}
	})
	if dup.Load() {
		return e.WidthReference()
	}
	width := -1
	for i := 0; i < m; i++ {
		if c := int(rc.edgeOff[i+1] - rc.edgeOff[i]); width < 0 || c < width {
			width = c
		}
	}
	if width < 0 {
		width = 0
	}
	return width, nil
}

// Congestion returns the maximum, over directed host edges, of the
// number of guest-edge paths whose image contains that edge (§3: for a
// width-w embedding each guest edge contributes at most once per host
// edge because its paths are edge-disjoint).
func (e *Embedding) Congestion() (int, error) {
	max, _, err := e.edgeCounts()
	return max, err
}

// LinkUtilization returns the fraction of directed host edges used by
// at least one path. Theorem 1 uses about half the links; Theorem 2
// with n ≡ 0 (mod 4) uses all of them.
func (e *Embedding) LinkUtilization() (float64, error) {
	_, used, err := e.edgeCounts()
	if err != nil {
		return 0, err
	}
	return float64(used) / float64(e.Host.DirectedEdges()), nil
}

// edgeCounts makes one parallel pass over the id arena with a pooled
// counter slice, returning the maximum count on any directed host edge
// and the number of distinct edges used. The counter is re-zeroed by a
// second pass over the same arena (atomic swap: the first visit to an
// entry reads its count and clears it, later visits read zero), so the
// pooled slice keeps its all-zero invariant without an O(edges) sweep.
func (e *Embedding) edgeCounts() (max, used int, err error) {
	rc, err := e.routes()
	if err != nil {
		return 0, 0, err
	}
	cp := getCounts(e.Host.DirectedEdges())
	defer putCounts(cp)
	counts := *cp
	parallelFor(len(rc.ids), 4096, func(lo, hi int) {
		for _, id := range rc.ids[lo:hi] {
			atomic.AddInt32(&counts[id], 1)
		}
	})
	var maxA, usedA int64
	parallelFor(len(rc.ids), 4096, func(lo, hi int) {
		localMax, localUsed := int64(0), int64(0)
		for _, id := range rc.ids[lo:hi] {
			if c := int64(atomic.SwapInt32(&counts[id], 0)); c > 0 {
				localUsed++
				if c > localMax {
					localMax = c
				}
			}
		}
		atomic.AddInt64(&usedA, localUsed)
		for {
			old := atomic.LoadInt64(&maxA)
			if localMax <= old || atomic.CompareAndSwapInt64(&maxA, old, localMax) {
				break
			}
		}
	})
	return int(maxA), int(usedA), nil
}

// OneToOne reports whether the vertex map is injective.
func (e *Embedding) OneToOne() bool {
	seen := make([]bool, e.Host.Nodes())
	for _, h := range e.VertexMap {
		if seen[h] {
			return false
		}
		seen[h] = true
	}
	return true
}
