package core_test

// Equivalence tests pinning the dense metric engine to the retired
// implementations. ppacketCostGolden below is the package's original
// store-and-forward simulator, kept verbatim (over the public
// PathEdgeIDs API): PPacketCost now routes through the pooled netsim
// engine, and these tests prove the swap preserved every cost on the
// paper's constructions before the old simulator was deleted.

import (
	"fmt"
	"sort"
	"testing"

	"multipath/internal/core"
	"multipath/internal/cycles"
	"multipath/internal/hamdecomp"
	"multipath/internal/hypercube"
	"multipath/internal/xproduct"
)

// ppacketCostGolden is the original PPacketCost: a private greedy
// store-and-forward simulator — FIFO queues per directed edge, ties by
// injection order, deterministic ascending-edge iteration per step.
func ppacketCostGolden(e *core.Embedding, p int) (int, error) {
	if p < 1 {
		return 0, fmt.Errorf("core: p must be positive")
	}
	type packet struct {
		route []int // dense host edge ids
		pos   int   // next edge to traverse
		ready int   // step after which it may next move
	}
	var pkts []*packet
	for _, ps := range e.Paths {
		routes := make([][]int, len(ps))
		for j, path := range ps {
			ids, err := e.Host.PathEdgeIDs(path)
			if err != nil {
				return 0, err
			}
			routes[j] = ids
		}
		for k := 0; k < p; k++ {
			r := routes[k%len(routes)]
			if len(r) == 0 {
				continue // co-located endpoints: delivered at cost 0
			}
			pkts = append(pkts, &packet{route: r})
		}
	}
	queues := make(map[int][]int)
	for i, pk := range pkts {
		queues[pk.route[0]] = append(queues[pk.route[0]], i)
	}
	remaining := len(pkts)
	step := 0
	for remaining > 0 {
		step++
		if step > 4*(len(pkts)+16) {
			return 0, fmt.Errorf("core: packet simulation did not converge")
		}
		edges := make([]int, 0, len(queues))
		for id := range queues {
			edges = append(edges, id)
		}
		sort.Ints(edges)
		for _, id := range edges {
			q := queues[id]
			sel := -1
			for qi, pi := range q {
				if pkts[pi].ready < step {
					sel = qi
					break
				}
			}
			if sel < 0 {
				continue
			}
			pi := q[sel]
			queues[id] = append(q[:sel:sel], q[sel+1:]...)
			if len(queues[id]) == 0 {
				delete(queues, id)
			}
			pk := pkts[pi]
			pk.pos++
			pk.ready = step
			if pk.pos == len(pk.route) {
				remaining--
			} else {
				queues[pk.route[pk.pos]] = append(queues[pk.route[pk.pos]], pi)
			}
		}
	}
	return step, nil
}

// equivalenceEmbeddings builds the constructions the acceptance
// criteria name: Theorem 1, Theorem 2, Theorem 4, plus the classical
// Gray-code embedding as the high-contention case (cost m under p=m).
func equivalenceEmbeddings(t *testing.T) map[string]*core.Embedding {
	t.Helper()
	out := map[string]*core.Embedding{}
	e1, err := cycles.Theorem1(8)
	if err != nil {
		t.Fatal(err)
	}
	out["theorem1-n8"] = e1
	e2, err := cycles.Theorem2(8)
	if err != nil {
		t.Fatal(err)
	}
	out["theorem2-n8"] = e2
	dec, err := hamdecomp.Decompose(4)
	if err != nil {
		t.Fatal(err)
	}
	q := hypercube.New(4)
	var copies []*core.Embedding
	for _, cyc := range dec.Directed() {
		c, err := core.DirectCycleEmbedding(q, cyc)
		if err != nil {
			t.Fatal(err)
		}
		copies = append(copies, c)
	}
	_, e4, err := xproduct.Theorem4(copies)
	if err != nil {
		t.Fatal(err)
	}
	out["theorem4-a4"] = e4
	g, err := cycles.GrayCode(6)
	if err != nil {
		t.Fatal(err)
	}
	out["graycode-k6"] = g
	return out
}

// TestPPacketCostMatchesRetiredSimulator pins the netsim-backed
// PPacketCost to the retired private simulator across the paper's
// constructions and a range of packet counts, including p above and
// below the per-edge path count.
func TestPPacketCostMatchesRetiredSimulator(t *testing.T) {
	for name, e := range equivalenceEmbeddings(t) {
		for _, p := range []int{1, 2, 3, 4, 6, 9} {
			want, err := ppacketCostGolden(e, p)
			if err != nil {
				t.Fatalf("%s p=%d: golden: %v", name, p, err)
			}
			got, err := e.PPacketCost(p)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if got != want {
				t.Errorf("%s: PPacketCost(%d) = %d, retired simulator gave %d", name, p, got, want)
			}
		}
	}
}

// TestPPacketCostsBatchMatchesSerial pins the SimulateBatch-backed
// sweep to the one-at-a-time calls.
func TestPPacketCostsBatchMatchesSerial(t *testing.T) {
	ps := []int{1, 2, 3, 5, 8}
	for name, e := range equivalenceEmbeddings(t) {
		batch, err := e.PPacketCosts(ps)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for k, p := range ps {
			want, err := e.PPacketCost(p)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if batch[k] != want {
				t.Errorf("%s: PPacketCosts[%d]=%d, PPacketCost(%d)=%d", name, k, batch[k], p, want)
			}
		}
	}
	if e, err := cycles.GrayCode(4); err != nil {
		t.Fatal(err)
	} else if _, err := e.PPacketCosts([]int{1, 0}); err == nil {
		t.Error("PPacketCosts accepted p=0")
	}
}

// TestDenseMetricsMatchReference pins the parallel dense Width and
// SynchronizedCost to the retained map-based reference implementations
// on every construction, on both warm and cold caches.
func TestDenseMetricsMatchReference(t *testing.T) {
	for name, e := range equivalenceEmbeddings(t) {
		for round := 0; round < 2; round++ { // cold, then warm
			wRef, errRef := e.WidthReference()
			w, err := e.Width()
			if (err == nil) != (errRef == nil) || w != wRef {
				t.Errorf("%s round %d: Width = (%d, %v), reference (%d, %v)", name, round, w, err, wRef, errRef)
			}
			cRef, errRef := e.SynchronizedCostReference()
			c, err := e.SynchronizedCost()
			if (err == nil) != (errRef == nil) || c != cRef {
				t.Errorf("%s round %d: SynchronizedCost = (%d, %v), reference (%d, %v)", name, round, c, err, cRef, errRef)
			}
		}
	}
}

// TestDenseMetricsMatchReferenceOnViolations mutates an embedding in
// place and checks the dense engine both notices the change (cache
// invalidation by fingerprint) and reports the byte-identical error the
// reference produces.
func TestDenseMetricsMatchReferenceOnViolations(t *testing.T) {
	e, err := cycles.Theorem1(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Width(); err != nil { // warm the cache
		t.Fatal(err)
	}
	// Overwrite one path with a copy of its neighbor: same guest edge,
	// shared host edges.
	saved := e.Paths[0][1]
	e.Paths[0][1] = e.Paths[0][0]
	_, err = e.Width()
	_, errRef := e.WidthReference()
	if err == nil || errRef == nil || err.Error() != errRef.Error() {
		t.Errorf("Width overlap:\n dense:     %v\n reference: %v", err, errRef)
	}
	_, err = e.SynchronizedCost()
	_, errRef = e.SynchronizedCostReference()
	if err == nil || errRef == nil || err.Error() != errRef.Error() {
		t.Errorf("SynchronizedCost collision:\n dense:     %v\n reference: %v", err, errRef)
	}
	e.Paths[0][1] = saved
	if _, err := e.Width(); err != nil {
		t.Errorf("restored embedding rejected: %v", err)
	}
	// In-place single-node corruption (not a fresh slice): breaks
	// adjacency, must be caught by the fingerprint.
	old := e.Paths[2][0][0]
	e.Paths[2][0][0] ^= 0x55
	if err := e.Validate(); err == nil {
		t.Error("Validate accepted corrupted path")
	}
	if _, err := e.Width(); err == nil {
		t.Error("Width accepted corrupted path")
	}
	e.Paths[2][0][0] = old
	if err := e.Validate(); err != nil {
		t.Errorf("restored embedding rejected: %v", err)
	}
}
