package core

import (
	"fmt"
	"sort"
)

// Packet-cost measurement under the paper's model: in one time unit
// each processor can send one packet over each outgoing link (§3).

// SynchronizedCost checks the schedule used by Theorems 1, 2 and 4: one
// packet is injected on every path of every guest edge at step 1, and
// each packet advances one hop per step with no queueing. If no two
// packets cross the same directed host edge in the same step, the cost
// is the maximum path length; otherwise an error describes the first
// collision.
func (e *Embedding) SynchronizedCost() (int, error) {
	type slot struct {
		edge, step int
	}
	seen := make(map[slot][2]int) // -> (guest edge, path index)
	cost := 0
	for i, ps := range e.Paths {
		for j, p := range ps {
			ids, err := e.Host.PathEdgeIDs(p)
			if err != nil {
				return 0, err
			}
			if len(ids) > cost {
				cost = len(ids)
			}
			for t, id := range ids {
				s := slot{id, t}
				if prev, dup := seen[s]; dup {
					ed := e.Host.EdgeOf(id)
					return 0, fmt.Errorf("core: step %d: host edge (%d,dim %d) claimed by guest edge %d path %d and guest edge %d path %d",
						t+1, ed.From, ed.Dim, prev[0], prev[1], i, j)
				}
				seen[s] = [2]int{i, j}
			}
		}
	}
	return cost, nil
}

// PPacketCost simulates one phase in which every guest edge carries p
// packets, spread round-robin over the edge's paths, with store-and-
// forward queueing: each directed host edge transmits at most one
// packet per step (FIFO by arrival, ties broken by injection order).
// It returns the number of steps until every packet is delivered.
//
// This is the measured counterpart of the paper's p-packet cost: for
// Theorem 1's embedding PPacketCost(⌊n/2⌋) = 3, and for the classical
// Gray-code embedding PPacketCost(m) = m.
func (e *Embedding) PPacketCost(p int) (int, error) {
	if p < 1 {
		return 0, fmt.Errorf("core: p must be positive")
	}
	type packet struct {
		route []int // dense host edge ids
		pos   int   // next edge to traverse
		ready int   // step after which it may next move
	}
	var pkts []*packet
	for _, ps := range e.Paths {
		routes := make([][]int, len(ps))
		for j, path := range ps {
			ids, err := e.Host.PathEdgeIDs(path)
			if err != nil {
				return 0, err
			}
			routes[j] = ids
		}
		for k := 0; k < p; k++ {
			r := routes[k%len(routes)]
			if len(r) == 0 {
				continue // co-located endpoints: delivered at cost 0
			}
			pkts = append(pkts, &packet{route: r})
		}
	}
	// queues[edge] holds the indices of packets waiting to cross it.
	queues := make(map[int][]int)
	for i, pk := range pkts {
		queues[pk.route[0]] = append(queues[pk.route[0]], i)
	}
	remaining := len(pkts)
	step := 0
	for remaining > 0 {
		step++
		if step > 4*(len(pkts)+16) {
			return 0, fmt.Errorf("core: packet simulation did not converge")
		}
		// Deterministic iteration order over occupied edges.
		edges := make([]int, 0, len(queues))
		for id := range queues {
			edges = append(edges, id)
		}
		sort.Ints(edges)
		for _, id := range edges {
			q := queues[id]
			// Find the first packet that is allowed to move this step
			// (arrived before this step began).
			sel := -1
			for qi, pi := range q {
				if pkts[pi].ready < step {
					sel = qi
					break
				}
			}
			if sel < 0 {
				continue
			}
			pi := q[sel]
			queues[id] = append(q[:sel:sel], q[sel+1:]...)
			if len(queues[id]) == 0 {
				delete(queues, id)
			}
			pk := pkts[pi]
			pk.pos++
			pk.ready = step
			if pk.pos == len(pk.route) {
				remaining--
			} else {
				queues[pk.route[pk.pos]] = append(queues[pk.route[pk.pos]], pi)
			}
		}
	}
	return step, nil
}

// OnePacketCostBounds returns the §3 sandwich for the one-packet cost:
// at least the latency floor (for a classical single-path embedding,
// max(dilation, congestion); for a width-w embedding a lone packet may
// ride each edge's shortest path, so the floor is MinDilation) and at
// most dilation × congestion (Leighton, Maggs & Rao [19] tighten the
// upper bound to O(dilation + congestion)). Tests assert the measured
// PPacketCost(1) falls inside these bounds for every construction.
func (e *Embedding) OnePacketCostBounds() (lower, upper int, err error) {
	c, err := e.Congestion()
	if err != nil {
		return 0, 0, err
	}
	d := e.Dilation()
	lower = e.MinDilation()
	singlePath := true
	for _, ps := range e.Paths {
		if len(ps) != 1 {
			singlePath = false
			break
		}
	}
	if singlePath && c > lower {
		lower = c
	}
	upper = d * c
	if upper < lower {
		upper = lower
	}
	return lower, upper, nil
}
