package core

import (
	"fmt"
	"sync/atomic"

	"multipath/internal/netsim"
)

// Packet-cost measurement under the paper's model: in one time unit
// each processor can send one packet over each outgoing link (§3).

// SynchronizedCost checks the schedule used by Theorems 1, 2 and 4: one
// packet is injected on every path of every guest edge at step 1, and
// each packet advances one hop per step with no queueing. If no two
// packets cross the same directed host edge in the same step, the cost
// is the maximum path length; otherwise an error describes the first
// collision.
//
// The check runs step by step over the cached routes: a pooled counter
// slice claims each step's host edges in parallel, then a second pass
// re-zeroes exactly the claimed entries. A collision falls back to the
// reference implementation for the original error message.
func (e *Embedding) SynchronizedCost() (int, error) {
	rc, err := e.routes()
	if err != nil {
		return e.SynchronizedCostReference()
	}
	totalPaths := len(rc.pathOff) - 1
	cp := getCounts(e.Host.DirectedEdges())
	defer putCounts(cp)
	counts := *cp
	var collide atomic.Bool
	for t := 0; t < rc.maxLen && !collide.Load(); t++ {
		parallelFor(totalPaths, 256, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				at := rc.pathOff[p] + int32(t)
				if at < rc.pathOff[p+1] {
					if atomic.AddInt32(&counts[rc.ids[at]], 1) == 2 {
						collide.Store(true)
					}
				}
			}
		})
		parallelFor(totalPaths, 256, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				at := rc.pathOff[p] + int32(t)
				if at < rc.pathOff[p+1] {
					atomic.StoreInt32(&counts[rc.ids[at]], 0)
				}
			}
		})
	}
	if collide.Load() {
		return e.SynchronizedCostReference()
	}
	return rc.maxLen, nil
}

// PPacketCost simulates one phase in which every guest edge carries p
// packets, spread round-robin over the edge's paths, with store-and-
// forward queueing: each directed host edge transmits at most one
// packet per step (FIFO by arrival, ties broken by injection order).
// It returns the number of steps until every packet is delivered.
//
// The simulation itself is the pooled netsim engine: each packet is a
// one-flit store-and-forward message over its path's cached edge ids.
// The engine's contention rule — FIFO by arrival step, same-step ties
// by message id — reproduces the injection-order tie-break exactly (see
// TestPPacketCostTieBreak and the equivalence tests against the
// retired built-in simulator).
//
// This is the measured counterpart of the paper's p-packet cost: for
// Theorem 1's embedding PPacketCost(⌊n/2⌋) = 3, and for the classical
// Gray-code embedding PPacketCost(m) = m.
func (e *Embedding) PPacketCost(p int) (int, error) {
	if p < 1 {
		return 0, fmt.Errorf("core: p must be positive")
	}
	msgs, err := e.packetMessages(p)
	if err != nil {
		return 0, err
	}
	res, err := netsim.Simulate(msgs, netsim.StoreAndForward)
	if err != nil {
		return 0, fmt.Errorf("core: packet simulation: %w", err)
	}
	return res.Steps, nil
}

// PPacketCosts measures PPacketCost for every p in ps with one
// netsim.SimulateBatch call, fanning the independent simulations out
// across GOMAXPROCS pooled engines. Results are identical to calling
// PPacketCost serially for each p.
func (e *Embedding) PPacketCosts(ps []int) ([]int, error) {
	for _, p := range ps {
		if p < 1 {
			return nil, fmt.Errorf("core: p must be positive")
		}
	}
	jobs := make([]netsim.BatchJob, len(ps))
	for k, p := range ps {
		msgs, err := e.packetMessages(p)
		if err != nil {
			return nil, err
		}
		jobs[k] = netsim.BatchJob{Msgs: msgs, Mode: netsim.StoreAndForward}
	}
	results, err := netsim.SimulateBatch(jobs)
	if err != nil {
		return nil, fmt.Errorf("core: packet simulation: %w", err)
	}
	costs := make([]int, len(ps))
	for k, r := range results {
		costs[k] = r.Steps
	}
	return costs, nil
}

// packetMessages builds the p-packet workload: for each guest edge, p
// one-flit messages spread round-robin over the edge's paths in path
// order, skipping zero-length routes (co-located endpoints deliver at
// cost 0). Message order is injection order, which is what the engine
// uses to break same-step ties. Routes alias one shared arena so the
// whole workload costs two allocations beyond the message headers.
func (e *Embedding) packetMessages(p int) ([]*netsim.Message, error) {
	rc, err := e.routes()
	if err != nil {
		return nil, err
	}
	// Count messages and route ints first so the arena is exact.
	nMsgs, nInts := 0, 0
	for i := range e.Paths {
		first, past := rc.edgeOff[i], rc.edgeOff[i+1]
		if first == past {
			continue
		}
		for k := 0; k < p; k++ {
			pi := first + int32(k)%(past-first)
			if l := int(rc.pathOff[pi+1] - rc.pathOff[pi]); l > 0 {
				nMsgs++
				nInts += l
			}
		}
	}
	arena := make([]int, nInts)
	msgs := make([]*netsim.Message, 0, nMsgs)
	hdrs := make([]netsim.Message, nMsgs)
	at := 0
	for i := range e.Paths {
		first, past := rc.edgeOff[i], rc.edgeOff[i+1]
		if first == past {
			continue
		}
		for k := 0; k < p; k++ {
			pi := first + int32(k)%(past-first)
			ids := rc.pathIDs(pi)
			if len(ids) == 0 {
				continue
			}
			route := arena[at : at+len(ids)]
			for x, id := range ids {
				route[x] = int(id)
			}
			at += len(ids)
			hdrs[len(msgs)] = netsim.Message{Route: route, Flits: 1}
			msgs = append(msgs, &hdrs[len(msgs)])
		}
	}
	return msgs, nil
}

// OnePacketCostBounds returns the §3 sandwich for the one-packet cost:
// at least the latency floor (for a classical single-path embedding,
// max(dilation, congestion); for a width-w embedding a lone packet may
// ride each edge's shortest path, so the floor is MinDilation) and at
// most dilation × congestion (Leighton, Maggs & Rao [19] tighten the
// upper bound to O(dilation + congestion)). Tests assert the measured
// PPacketCost(1) falls inside these bounds for every construction.
func (e *Embedding) OnePacketCostBounds() (lower, upper int, err error) {
	c, err := e.Congestion()
	if err != nil {
		return 0, 0, err
	}
	d := e.Dilation()
	lower = e.MinDilation()
	singlePath := true
	for _, ps := range e.Paths {
		if len(ps) != 1 {
			singlePath = false
			break
		}
	}
	if singlePath && c > lower {
		lower = c
	}
	upper = d * c
	if upper < lower {
		upper = lower
	}
	return lower, upper, nil
}
