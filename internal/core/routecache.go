package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the dense route cache behind every metric in the
// package. The paper's verifiers all reduce to scans over the multiset
// of directed host-edge ids traversed by the embedding's paths; the old
// implementations re-derived those ids with Host.PathEdgeIDs on every
// call and counted them in maps. The cache computes the ids once, packs
// them into one flat arena, and lets the metrics run as parallel passes
// over int32 slices with pooled scratch — the same design as the
// netsim engine.
//
// Layout: ids holds every path's edge ids back to back. Path p (in
// flattened order: all paths of guest edge 0, then guest edge 1, ...)
// occupies ids[pathOff[p]:pathOff[p+1]]; guest edge i owns the
// flattened paths edgeOff[i]..edgeOff[i+1]. So guest edge i's ids are
// the contiguous range ids[pathOff[edgeOff[i]]:pathOff[edgeOff[i+1]]].
type routeCache struct {
	fp      uint64  // fingerprint of the embedding the cache was built from
	ids     []int32 // arena of dense host-edge ids, all paths concatenated
	pathOff []int32 // len totalPaths+1; per-path extents into ids
	edgeOff []int32 // len M+1; per-guest-edge extents into pathOff
	maxLen  int     // longest path, in edges
}

// rcMu guards the rc pointer on every Embedding. A single package-level
// mutex (rather than a field) keeps Embedding free of lock state so
// callers may still copy it by value; the critical sections are
// pointer-sized, so contention is irrelevant.
var rcMu sync.Mutex

// fingerprint hashes everything the route cache depends on (FNV-1a
// over host dimension, vertex map, and path structure + contents), so
// in-place mutation of a path between metric calls is detected and the
// cache rebuilt. The walk is allocation-free and linear in the total
// path length — far cheaper than one map-based metric pass.
func (e *Embedding) fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	mix(uint64(e.Host.Dims()))
	mix(uint64(len(e.VertexMap)))
	for _, v := range e.VertexMap {
		mix(uint64(v))
	}
	mix(uint64(len(e.Paths)))
	for _, ps := range e.Paths {
		mix(uint64(len(ps)))
		for _, p := range ps {
			mix(uint64(len(p)))
			for _, v := range p {
				mix(uint64(v))
			}
		}
	}
	return h
}

// routes returns the embedding's dense route form, rebuilding it if the
// embedding changed since the last metric call. Errors are reported in
// the same "embedding: guest edge %d path %d: ..." form Width has
// always used. Safe for concurrent use; a race between two builders
// costs a duplicate build, never corruption.
func (e *Embedding) routes() (*routeCache, error) {
	fp := e.fingerprint()
	rcMu.Lock()
	rc := e.rc
	rcMu.Unlock()
	if rc != nil && rc.fp == fp {
		return rc, nil
	}
	rc, err := buildRoutes(e)
	if err != nil {
		return nil, err
	}
	rc.fp = fp
	rcMu.Lock()
	e.rc = rc
	rcMu.Unlock()
	return rc, nil
}

func buildRoutes(e *Embedding) (*routeCache, error) {
	m := len(e.Paths)
	edgeOff := make([]int32, m+1)
	totalPaths := 0
	for i, ps := range e.Paths {
		totalPaths += len(ps)
		edgeOff[i+1] = int32(totalPaths)
	}
	pathOff := make([]int32, totalPaths+1)
	var total int64
	maxLen := 0
	p := 0
	for _, ps := range e.Paths {
		for _, path := range ps {
			l := len(path) - 1
			if l < 0 {
				l = 0 // empty path: caught below by the fill pass
			}
			total += int64(l)
			if l > maxLen {
				maxLen = l
			}
			p++
			pathOff[p] = int32(total)
		}
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("embedding: %d path edges exceed the dense id arena limit", total)
	}
	rc := &routeCache{
		ids:     make([]int32, total),
		pathOff: pathOff,
		edgeOff: edgeOff,
		maxLen:  maxLen,
	}
	// Fill and validate every path in parallel. On failure remember the
	// lowest flattened path index so the error is deterministic.
	bad := int64(totalPaths)
	badp := &bad
	parallelFor(totalPaths, 64, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			path := flatPath(e, edgeOff, p)
			if err := e.Host.FillPathEdgeIDs32(rc.ids[pathOff[p]:pathOff[p+1]], path); err != nil {
				atomicMin(badp, int64(p))
				return
			}
		}
	})
	if bad < int64(totalPaths) {
		p := int(bad)
		i := sort.Search(m, func(i int) bool { return edgeOff[i+1] > int32(p) })
		j := p - int(edgeOff[i])
		err := e.Host.FillPathEdgeIDs32(rc.ids[pathOff[p]:pathOff[p+1]], e.Paths[i][j])
		return nil, fmt.Errorf("embedding: guest edge %d path %d: %w", i, j, err)
	}
	return rc, nil
}

// flatPath returns the path with flattened index p.
func flatPath(e *Embedding, edgeOff []int32, p int) Path {
	i := sort.Search(len(e.Paths), func(i int) bool { return edgeOff[i+1] > int32(p) })
	return e.Paths[i][p-int(edgeOff[i])]
}

// edgeIDs returns the contiguous ids of guest edge i's paths.
func (rc *routeCache) edgeIDs(i int) []int32 {
	return rc.ids[rc.pathOff[rc.edgeOff[i]]:rc.pathOff[rc.edgeOff[i+1]]]
}

// pathIDs returns the ids of flattened path p.
func (rc *routeCache) pathIDs(p int32) []int32 {
	return rc.ids[rc.pathOff[p]:rc.pathOff[p+1]]
}

// parallelFor runs fn over [0,n) split into one contiguous chunk per
// worker. It stays serial when the range is smaller than minChunk or
// only one CPU is available, so tiny embeddings pay no goroutine tax.
func parallelFor(n, minChunk int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if minChunk > 0 && workers > n/minChunk {
		workers = n / minChunk
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func atomicMin(p *int64, v int64) {
	for {
		old := atomic.LoadInt64(p)
		if v >= old || atomic.CompareAndSwapInt64(p, old, v) {
			return
		}
	}
}

// Pooled scratch for metric passes. Slices come out all-zero and must
// go back all-zero: every user clears exactly the entries it touched
// (with atomics when the pass was parallel) before returning them.

var countsPool = sync.Pool{New: func() any { return new([]int32) }}

// getCounts returns a zeroed []int32 of length n from the pool.
func getCounts(n int) *[]int32 {
	cp := countsPool.Get().(*[]int32)
	if cap(*cp) < n {
		*cp = make([]int32, n)
	}
	*cp = (*cp)[:n]
	return cp
}

func putCounts(cp *[]int32) { countsPool.Put(cp) }

var bitsetPool = sync.Pool{New: func() any { return new([]uint64) }}

// getBitset returns a zeroed bitset covering n bits.
func getBitset(n int) *[]uint64 {
	w := (n + 63) / 64
	bp := bitsetPool.Get().(*[]uint64)
	if cap(*bp) < w {
		*bp = make([]uint64, w)
	}
	*bp = (*bp)[:w]
	return bp
}

func putBitset(bp *[]uint64) { bitsetPool.Put(bp) }

var scratchPool = sync.Pool{New: func() any { return new([]int32) }}

// getScratch returns a length-0 id buffer with at least the given
// capacity; contents need not be zeroed before return.
func getScratch(capacity int) *[]int32 {
	sp := scratchPool.Get().(*[]int32)
	if cap(*sp) < capacity {
		*sp = make([]int32, 0, capacity)
	}
	*sp = (*sp)[:0]
	return sp
}

func putScratch(sp *[]int32) { scratchPool.Put(sp) }
