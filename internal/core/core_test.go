package core

import (
	"strings"
	"testing"

	"multipath/internal/bitutil"
	"multipath/internal/graph"
	"multipath/internal/hypercube"
)

func grayEmbedding(t *testing.T, n int) *Embedding {
	t.Helper()
	q := hypercube.New(n)
	e, err := DirectCycleEmbedding(q, bitutil.HamiltonianCycle(n))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDirectCycleEmbeddingGray(t *testing.T) {
	e := grayEmbedding(t, 5)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Load() != 1 {
		t.Errorf("load = %d", e.Load())
	}
	if e.Dilation() != 1 {
		t.Errorf("dilation = %d", e.Dilation())
	}
	w, err := e.Width()
	if err != nil || w != 1 {
		t.Errorf("width = %d, %v", w, err)
	}
	c, err := e.Congestion()
	if err != nil || c != 1 {
		t.Errorf("congestion = %d, %v", c, err)
	}
	if !e.OneToOne() {
		t.Error("gray embedding not one-to-one")
	}
	// Only 2^n of the n·2^n directed links are used (§2).
	u, err := e.LinkUtilization()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.0 / 5; u != want {
		t.Errorf("utilization = %f, want %f", u, want)
	}
}

func TestDirectCycleEmbeddingRejectsNonCycle(t *testing.T) {
	q := hypercube.New(3)
	if _, err := DirectCycleEmbedding(q, []hypercube.Node{0, 3, 1}); err == nil {
		t.Error("non-adjacent sequence accepted")
	}
	if _, err := DirectCycleEmbedding(q, []hypercube.Node{0}); err == nil {
		t.Error("single node accepted")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	e := grayEmbedding(t, 4)
	// Path endpoints mismatched.
	bad := *e
	bad.Paths = append([][]Path(nil), e.Paths...)
	bad.Paths[0] = []Path{{e.VertexMap[0], e.VertexMap[0] ^ 8}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "connects") {
		t.Errorf("mismatched path endpoint: %v", err)
	}
	// Missing path set.
	bad2 := *e
	bad2.Paths = e.Paths[:len(e.Paths)-1]
	if err := bad2.Validate(); err == nil {
		t.Error("missing path set accepted")
	}
	// Vertex outside host.
	bad3 := *e
	bad3.VertexMap = append([]hypercube.Node(nil), e.VertexMap...)
	bad3.VertexMap[3] = 1 << 10
	if err := bad3.Validate(); err == nil {
		t.Error("out-of-host vertex accepted")
	}
	// Empty path set.
	bad4 := *e
	bad4.Paths = append([][]Path(nil), e.Paths...)
	bad4.Paths[2] = nil
	if err := bad4.Validate(); err == nil {
		t.Error("empty path set accepted")
	}
}

func TestWidthDetectsOverlap(t *testing.T) {
	q := hypercube.New(3)
	g := graph.New(2)
	g.AddEdge(0, 1)
	e := &Embedding{
		Host:      q,
		Guest:     g,
		VertexMap: []hypercube.Node{0, 1},
		Paths: [][]Path{{
			RouteDims(0, 0),
			RouteDims(0, 1, 0, 1), // shares no edge with the direct path
		}},
	}
	if w, err := e.Width(); err != nil || w != 2 {
		t.Fatalf("disjoint paths: width=%d err=%v", w, err)
	}
	e.Paths[0][1] = RouteDims(0, 1, 1, 0) // crosses dim 1 and back, then shares (0→1)? no: ends at 1 via dim 0 edge from 0
	// Path 0,2,0,1: final edge (0→1) duplicates the direct path.
	if _, err := e.Width(); err == nil {
		t.Error("overlapping paths accepted")
	}
}

func TestDilationAndMinDilation(t *testing.T) {
	q := hypercube.New(4)
	g := graph.New(2)
	g.AddEdge(0, 1)
	e := &Embedding{
		Host:      q,
		Guest:     g,
		VertexMap: []hypercube.Node{0, 1},
		Paths: [][]Path{{
			RouteDims(0, 0),
			RouteDims(0, 1, 0, 1),
			RouteDims(0, 2, 0, 2),
		}},
	}
	if e.Dilation() != 3 {
		t.Errorf("dilation = %d", e.Dilation())
	}
	if e.MinDilation() != 1 {
		t.Errorf("min dilation = %d", e.MinDilation())
	}
}

func TestLoadManyToOne(t *testing.T) {
	q := hypercube.New(2)
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	e := &Embedding{
		Host:      q,
		Guest:     g,
		VertexMap: []hypercube.Node{0, 1, 0},
		Paths: [][]Path{
			{{0, 1}},
			{{1, 0}},
			{{0}}, // co-located endpoints: length-0 path
		},
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Load() != 2 {
		t.Errorf("load = %d", e.Load())
	}
	if e.OneToOne() {
		t.Error("many-to-one map reported one-to-one")
	}
}

func TestSynchronizedCost(t *testing.T) {
	e := grayEmbedding(t, 4)
	c, err := e.SynchronizedCost()
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Errorf("gray cycle synchronized cost = %d", c)
	}
	// Force a collision: two guest edges sharing one host edge at the
	// same step.
	q := hypercube.New(3)
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	bad := &Embedding{
		Host:      q,
		Guest:     g,
		VertexMap: []hypercube.Node{0, 1, 0},
		Paths: [][]Path{
			{{0, 1}},
			{{0, 1}},
		},
	}
	if _, err := bad.SynchronizedCost(); err == nil {
		t.Error("colliding schedule accepted")
	}
}

func TestPPacketCostGrayIsM(t *testing.T) {
	// Classical claim (§2): with the Gray-code embedding, sending m
	// packets per cycle edge takes m steps (single path, pipelined but
	// serialized at the source link).
	e := grayEmbedding(t, 4)
	for _, m := range []int{1, 2, 5, 8} {
		c, err := e.PPacketCost(m)
		if err != nil {
			t.Fatal(err)
		}
		if c != m {
			t.Errorf("m=%d: cost = %d, want %d", m, c, m)
		}
	}
}

func TestPPacketCostRejectsNonPositive(t *testing.T) {
	e := grayEmbedding(t, 3)
	if _, err := e.PPacketCost(0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestPPacketCostMultiPathPipelines(t *testing.T) {
	// Two disjoint length-2 paths for a single guest edge: 4 packets
	// should take 3 steps (2 per path, pipelined: 2 + (2-1)).
	q := hypercube.New(3)
	g := graph.New(2)
	g.AddEdge(0, 1)
	e := &Embedding{
		Host:      q,
		Guest:     g,
		VertexMap: []hypercube.Node{0, 1},
		Paths: [][]Path{{
			RouteDims(0, 1, 0, 1), // 0→2→3→1: dim 1 detour
			RouteDims(0, 2, 0, 2), // 0→4→5→1: dim 2 detour
			RouteDims(0, 0),       // direct
		}},
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if w, err := e.Width(); err != nil || w != 3 {
		t.Fatalf("width=%d err=%v", w, err)
	}
	c, err := e.PPacketCost(3)
	if err != nil {
		t.Fatal(err)
	}
	if c != 3 {
		t.Errorf("3 packets over width-3: cost = %d, want 3", c)
	}
	// 6 packets: second wave pipelines right behind: 4 steps.
	c, err = e.PPacketCost(6)
	if err != nil {
		t.Fatal(err)
	}
	if c != 4 {
		t.Errorf("6 packets: cost = %d, want 4", c)
	}
}

func TestRouteDims(t *testing.T) {
	p := RouteDims(0b000, 0, 2, 0)
	want := Path{0b000, 0b001, 0b101, 0b100}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestGreedyAscendingPath(t *testing.T) {
	q := hypercube.New(4)
	p := GreedyAscendingPath(q, 0b0000, 0b1010)
	if len(p) != 3 {
		t.Fatalf("path length %d", len(p))
	}
	if p[0] != 0 || p[1] != 0b0010 || p[2] != 0b1010 {
		t.Fatalf("path = %v", p)
	}
	if _, err := q.CheckPath(p); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointPathsAll(t *testing.T) {
	q := hypercube.New(5)
	for _, pair := range [][2]hypercube.Node{{0, 1}, {0, 0b11111}, {3, 28}, {7, 8}} {
		u, v := pair[0], pair[1]
		paths := DisjointPaths(q, u, v)
		if len(paths) != 5 {
			t.Fatalf("(%d,%d): %d paths", u, v, len(paths))
		}
		seen := make(map[int]bool)
		for _, p := range paths {
			if p[0] != u || p[len(p)-1] != v {
				t.Fatalf("(%d,%d): path %v has wrong endpoints", u, v, p)
			}
			ids, err := q.PathEdgeIDs(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range ids {
				if seen[id] {
					t.Fatalf("(%d,%d): edge %d reused", u, v, id)
				}
				seen[id] = true
			}
		}
	}
}

func TestMultiCopyValidateAndCongestion(t *testing.T) {
	// Lemma 1 shape for Q_4 will be tested in the cycles package; here
	// use two manually-rotated Gray cycles... rotating the node
	// sequence keeps the same host edges, so congestion doubles.
	q := hypercube.New(4)
	seq := bitutil.HamiltonianCycle(4)
	e1, err := DirectCycleEmbedding(q, seq)
	if err != nil {
		t.Fatal(err)
	}
	rot := append(append([]hypercube.Node(nil), seq[4:]...), seq[:4]...)
	e2, err := DirectCycleEmbedding(q, rot)
	if err != nil {
		t.Fatal(err)
	}
	mc := &MultiCopy{Host: q, Copies: []*Embedding{e1, e2}}
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	cong, err := mc.EdgeCongestion()
	if err != nil {
		t.Fatal(err)
	}
	if cong != 2 {
		t.Errorf("congestion = %d, want 2 (identical edge sets)", cong)
	}
	if mc.Dilation() != 1 {
		t.Errorf("dilation = %d", mc.Dilation())
	}
	if mc.NodeLoad() != 2 {
		t.Errorf("node load = %d", mc.NodeLoad())
	}
}

func TestMultiCopyRejects(t *testing.T) {
	q := hypercube.New(3)
	if err := (&MultiCopy{Host: q}).Validate(); err == nil {
		t.Error("empty multicopy accepted")
	}
	// Non-one-to-one copy.
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	bad := &Embedding{
		Host:      q,
		Guest:     g,
		VertexMap: []hypercube.Node{0, 0},
		Paths:     [][]Path{{{0}}, {{0}}},
	}
	mc := &MultiCopy{Host: q, Copies: []*Embedding{bad}}
	if err := mc.Validate(); err == nil {
		t.Error("many-to-one copy accepted")
	}
}

func TestOnePacketCostBounds(t *testing.T) {
	e := grayEmbedding(t, 5)
	lo, hi, err := e.OnePacketCostBounds()
	if err != nil {
		t.Fatal(err)
	}
	if lo != 1 || hi != 1 {
		t.Errorf("gray bounds %d/%d", lo, hi)
	}
	got, err := e.PPacketCost(1)
	if err != nil {
		t.Fatal(err)
	}
	if got < lo || got > hi {
		t.Errorf("measured %d outside [%d,%d]", got, lo, hi)
	}
}

func TestWidenGrayCycle(t *testing.T) {
	e := grayEmbedding(t, 6)
	wide, err := Widen(e, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := wide.Validate(); err != nil {
		t.Fatal(err)
	}
	w, err := wide.Width()
	if err != nil {
		t.Fatalf("per-edge disjointness broken: %v", err)
	}
	if w != 6 {
		t.Errorf("width %d", w)
	}
	// The point: naive widening has no cross-edge coordination, so the
	// synchronized schedule collides — unlike Theorem 1.
	if _, err := wide.SynchronizedCost(); err == nil {
		t.Error("naive widening unexpectedly collision-free")
	}
	// And its congestion exceeds Theorem 1's 3.
	c, err := wide.Congestion()
	if err != nil {
		t.Fatal(err)
	}
	if c <= 3 {
		t.Errorf("congestion %d unexpectedly low", c)
	}
}

func TestWidenValidation(t *testing.T) {
	e := grayEmbedding(t, 4)
	if _, err := Widen(e, 0); err == nil {
		t.Error("w=0 accepted")
	}
	if _, err := Widen(e, 5); err == nil {
		t.Error("w>n accepted")
	}
	multi := grayEmbedding(t, 4)
	multi.Paths[0] = append(multi.Paths[0], RouteDims(multi.VertexMap[0], 1, 0, 1))
	if _, err := Widen(multi, 2); err == nil {
		t.Error("multi-path input accepted")
	}
}
