package core

// StepUtilization returns, for each step t of the synchronized
// schedule (all paths launched together, one hop per step), the
// fraction of directed host edges that carry a packet at step t+1.
// Theorem 1 keeps roughly half the links busy at each of its three
// steps; Theorem 2 with n ≡ 0 (mod 4) keeps all of them busy.
//
// Distinct edges per step are counted in a pooled flat bitset keyed by
// dense host-edge id; after each step the pass clears exactly the bits
// it set, so one bitset serves every step with no per-step allocation.
func (e *Embedding) StepUtilization() ([]float64, error) {
	rc, err := e.routes()
	if err != nil {
		return nil, err
	}
	steps := rc.maxLen
	bp := getBitset(e.Host.DirectedEdges())
	defer putBitset(bp)
	bits := *bp
	totalPaths := len(rc.pathOff) - 1
	total := float64(e.Host.DirectedEdges())
	out := make([]float64, steps)
	for t := 0; t < steps; t++ {
		used := 0
		for p := 0; p < totalPaths; p++ {
			at := rc.pathOff[p] + int32(t)
			if at >= rc.pathOff[p+1] {
				continue
			}
			id := rc.ids[at]
			if bits[id>>6]&(1<<(uint(id)&63)) == 0 {
				bits[id>>6] |= 1 << (uint(id) & 63)
				used++
			}
		}
		out[t] = float64(used) / total
		for p := 0; p < totalPaths; p++ {
			at := rc.pathOff[p] + int32(t)
			if at < rc.pathOff[p+1] {
				id := rc.ids[at]
				bits[id>>6] &^= 1 << (uint(id) & 63)
			}
		}
	}
	return out, nil
}
