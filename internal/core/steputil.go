package core

// StepUtilization returns, for each step t of the synchronized
// schedule (all paths launched together, one hop per step), the
// fraction of directed host edges that carry a packet at step t+1.
// Theorem 1 keeps roughly half the links busy at each of its three
// steps; Theorem 2 with n ≡ 0 (mod 4) keeps all of them busy.
func (e *Embedding) StepUtilization() ([]float64, error) {
	steps := e.Dilation()
	used := make([]map[int]bool, steps)
	for t := range used {
		used[t] = make(map[int]bool)
	}
	for _, ps := range e.Paths {
		for _, p := range ps {
			ids, err := e.Host.PathEdgeIDs(p)
			if err != nil {
				return nil, err
			}
			for t, id := range ids {
				used[t][id] = true
			}
		}
	}
	total := float64(e.Host.DirectedEdges())
	out := make([]float64, steps)
	for t := range out {
		out[t] = float64(len(used[t])) / total
	}
	return out, nil
}
