package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"slices"
	"strings"
	"testing"

	"multipath/internal/graph"
	"multipath/internal/hypercube"
)

// refEmbedding assembles the same content as an arena build the
// original way: independent little slices, no adopted cache.
func refEmbedding(q *hypercube.Q, guest *graph.Graph, vertexMap []hypercube.Node, paths [][]Path) *Embedding {
	cp := make([][]Path, len(paths))
	for i, ps := range paths {
		cp[i] = make([]Path, len(ps))
		for j, p := range ps {
			cp[i][j] = append(Path(nil), p...)
		}
	}
	return &Embedding{Host: q, Guest: guest, VertexMap: vertexMap, Paths: cp}
}

func TestArenaAdoptsRouteCache(t *testing.T) {
	q := hypercube.New(3)
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	vm := []hypercube.Node{0, 1, 3, 7}

	a := NewArena(q)
	a.BeginEdge()
	a.RouteDims(0, 0)       // 0→1
	a.RouteDims(0, 1, 0, 1) // 0→2→3→1
	a.BeginEdge()
	a.RouteDims(1, 1) // 1→3
	e, err := a.Finish(g, vm)
	if err != nil {
		t.Fatal(err)
	}
	if e.rc == nil {
		t.Fatal("no adopted route cache")
	}
	if got, want := e.rc.fp, e.fingerprint(); got != want {
		t.Fatalf("adopted fingerprint %x, want %x", got, want)
	}
	want := refEmbedding(q, g, vm, [][]Path{
		{RouteDims(0, 0), RouteDims(0, 1, 0, 1)},
		{RouteDims(1, 1)},
	})
	if !reflect.DeepEqual(e.Paths, want.Paths) {
		t.Fatalf("paths %v, want %v", e.Paths, want.Paths)
	}
	// The adopted cache is what routes() would build.
	rcBefore := e.rc
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.rc != rcBefore {
		t.Error("Validate rebuilt an adopted cache")
	}
	w, err := e.Width()
	if err != nil {
		t.Fatal(err)
	}
	if ww, werr := want.Width(); w != ww || (err == nil) != (werr == nil) {
		t.Errorf("width %d/%v, reference %d/%v", w, err, ww, werr)
	}
}

func TestArenaPathViewsAreAppendSafe(t *testing.T) {
	q := hypercube.New(2)
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	a := NewArena(q)
	a.BeginEdge()
	a.RouteDims(0, 0)
	a.BeginEdge()
	a.RouteDims(1, 0)
	e, err := a.Finish(g, []hypercube.Node{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	before := append(Path(nil), e.Paths[1][0]...)
	// Appending to a view must copy, never clobber the neighbor path.
	_ = append(e.Paths[0][0], 3)
	_ = append(e.Paths[0], RouteDims(0, 1, 0, 1))
	if !reflect.DeepEqual(e.Paths[1][0], before) {
		t.Fatalf("neighbor path clobbered: %v, want %v", e.Paths[1][0], before)
	}
}

func TestArenaErrors(t *testing.T) {
	q := hypercube.New(2)
	cases := []struct {
		name string
		emit func(a *Arena)
		want string
	}{
		{"non-adjacent", func(a *Arena) { a.BeginEdge(); a.Route(0, 3) }, "not adjacent"},
		{"out of range", func(a *Arena) { a.BeginEdge(); a.Route(0, 4) }, "outside"},
		{"bad dim", func(a *Arena) { a.BeginEdge(); a.RouteDims(0, 2) }, "dimension 2"},
		{"no edge", func(a *Arena) { a.Route(0, 1) }, "before BeginEdge"},
		{"empty path", func(a *Arena) { a.BeginEdge(); a.Route() }, "empty path"},
		{"step outside route", func(a *Arena) { a.BeginEdge(); a.Step(1) }, "before StartRoute"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewArena(q)
			tc.emit(a)
			g := graph.New(2)
			g.AddEdge(0, 1)
			if _, err := a.Finish(g, []hypercube.Node{0, 1}); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want containing %q", err, tc.want)
			}
		})
	}
}

// randomBuild derives a deterministic random embedding shape: every
// path is a random dimension walk from the edge's mapped source, so
// hops are always structurally valid (endpoint mismatches and width
// overlaps still occur, as in real constructor bugs).
func randomBuild(seed int64) (*hypercube.Q, *graph.Graph, []hypercube.Node, [][][]int, [][]hypercube.Node) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(3) // host Q_2..Q_4
	q := hypercube.New(n)
	nv := 2 + rng.Intn(5)
	g := graph.New(nv)
	vm := make([]hypercube.Node, nv)
	for v := range vm {
		vm[v] = hypercube.Node(rng.Intn(q.Nodes()))
	}
	m := 1 + rng.Intn(6)
	for k := 0; k < m; k++ {
		u := int32(rng.Intn(nv))
		v := int32(rng.Intn(nv))
		if u == v {
			v = (v + 1) % int32(nv)
		}
		g.AddEdge(u, v)
	}
	dims := make([][][]int, g.M())
	froms := make([][]hypercube.Node, g.M())
	for i := range dims {
		np := 1 + rng.Intn(3)
		dims[i] = make([][]int, np)
		froms[i] = make([]hypercube.Node, np)
		for j := range dims[i] {
			froms[i][j] = vm[g.Edge(i).U]
			l := rng.Intn(4)
			walk := make([]int, l)
			for t := range walk {
				walk[t] = rng.Intn(n)
			}
			dims[i][j] = walk
		}
	}
	return q, g, vm, dims, froms
}

// arenaVsReference builds the same random embedding through the arena
// (with forced multi-worker fan-out) and through plain slices, and
// requires identical structure and metric outcomes.
func arenaVsReference(t testing.TB, seed int64) {
	q, g, vm, dims, froms := randomBuild(seed)
	e, err := buildParallel(q, g, vm, 0, 0, 4, func(i int, a *Arena) error {
		for j, walk := range dims[i] {
			a.RouteDims(froms[i][j], walk...)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("seed %d: arena build: %v", seed, err)
	}
	paths := make([][]Path, g.M())
	for i := range paths {
		paths[i] = make([]Path, len(dims[i]))
		for j, walk := range dims[i] {
			paths[i][j] = RouteDims(froms[i][j], walk...)
		}
	}
	ref := refEmbedding(q, g, vm, paths)
	if !reflect.DeepEqual(e.VertexMap, ref.VertexMap) || !reflect.DeepEqual(e.Paths, ref.Paths) {
		t.Fatalf("seed %d: arena embedding differs from reference", seed)
	}
	if got, want := e.rc.fp, e.fingerprint(); got != want {
		t.Fatalf("seed %d: adopted fingerprint %x, want %x", seed, got, want)
	}
	// The adopted arrays must be what a from-scratch rebuild derives.
	if rrc, rerr := buildRoutes(ref); rerr == nil {
		if !slices.Equal(e.rc.ids, rrc.ids) ||
			!slices.Equal(e.rc.pathOff, rrc.pathOff) ||
			!slices.Equal(e.rc.edgeOff, rrc.edgeOff) ||
			e.rc.maxLen != rrc.maxLen {
			t.Fatalf("seed %d: adopted cache differs from a rebuilt cache", seed)
		}
	}
	ev, rv := e.Validate(), ref.Validate()
	if (ev == nil) != (rv == nil) {
		t.Fatalf("seed %d: Validate %v vs reference %v", seed, ev, rv)
	}
	ew, ewerr := e.Width()
	rw, rwerr := ref.Width()
	if ew != rw || (ewerr == nil) != (rwerr == nil) {
		t.Fatalf("seed %d: Width %d/%v vs reference %d/%v", seed, ew, ewerr, rw, rwerr)
	}
	if ev != nil || ewerr != nil {
		return
	}
	ec, ecerr := e.SynchronizedCost()
	rc, rcerr := ref.SynchronizedCost()
	if ec != rc || (ecerr == nil) != (rcerr == nil) {
		t.Fatalf("seed %d: SynchronizedCost %d/%v vs reference %d/%v", seed, ec, ecerr, rc, rcerr)
	}
}

func TestArenaRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		arenaVsReference(t, seed)
	}
}

func FuzzArenaRoundTrip(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(1 << 40))
	f.Fuzz(func(t *testing.T, seed int64) {
		arenaVsReference(t, seed)
	})
}

// TestBuildParallelMatchesSerial pins the merge: many workers over a
// larger edge set produce exactly the single-arena result. Run with a
// raised GOMAXPROCS so `make race` exercises true concurrency even on
// one core.
func TestBuildParallelMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	q := hypercube.New(4)
	nv := 1 << 4
	g := graph.New(nv)
	vm := make([]hypercube.Node, nv)
	for v := 0; v < nv; v++ {
		vm[v] = hypercube.Node(v)
		g.AddEdge(int32(v), int32((v+1)%nv))
	}
	emit := func(i int, a *Arena) error {
		u := vm[i]
		for d := 0; d < 4; d++ {
			a.RouteDims(u, d, d) // out and back: structurally valid
		}
		return nil
	}
	// Duplicate the edges enough to cross the min-chunk threshold.
	big := graph.New(nv)
	for k := 0; k < 2048; k++ {
		big.AddEdge(int32(k%nv), int32((k+1)%nv))
	}
	bigEmit := func(i int, a *Arena) error { return emit(i%nv, a) }
	serial, err := buildParallel(q, big, vm, 4, 2, 1, bigEmit)
	if err != nil {
		t.Fatal(err)
	}
	par, err := buildParallel(q, big, vm, 4, 2, 8, bigEmit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Paths, par.Paths) {
		t.Fatal("parallel build differs from serial")
	}
	if serial.rc.fp != par.rc.fp {
		t.Fatalf("fingerprints differ: %x vs %x", serial.rc.fp, par.rc.fp)
	}
	if !reflect.DeepEqual(serial.rc.ids, par.rc.ids) ||
		!reflect.DeepEqual(serial.rc.pathOff, par.rc.pathOff) ||
		!reflect.DeepEqual(serial.rc.edgeOff, par.rc.edgeOff) {
		t.Fatal("adopted caches differ between serial and parallel build")
	}
}

// TestBuildParallelFirstErrorWins pins deterministic failure: the
// lowest guest edge's error is reported no matter which worker hits
// an error first.
func TestBuildParallelFirstErrorWins(t *testing.T) {
	q := hypercube.New(2)
	m := 2048
	g := graph.New(4)
	for k := 0; k < m; k++ {
		g.AddEdge(int32(k%3), int32(k%3+1))
	}
	vm := []hypercube.Node{0, 1, 2, 3}
	_, err := buildParallel(q, g, vm, 1, 1, 8, func(i int, a *Arena) error {
		if i >= 700 { // every chunk past the first fails
			a.Route(0, 3) // non-adjacent
			return nil
		}
		a.RouteDims(vm[g.Edge(i).U], 0)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "guest edge 700 ") {
		t.Fatalf("error %v, want guest edge 700", err)
	}
}
