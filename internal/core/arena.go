package core

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"

	"multipath/internal/graph"
	"multipath/internal/hypercube"
)

// This file is the construction engine: the build-time counterpart of
// the metric engine in routecache.go. Constructors used to assemble
// embeddings as millions of tiny Path slices, and the first metric
// call then re-derived the flat edge-id arena from scratch. An Arena
// lets a constructor append routes directly into dense form — one
// shared node arena, one shared int32 edge-id arena, prefix-sum
// offsets — so the finished Embedding's Paths are views into a single
// allocation and its route cache is adopted at build time: the
// fingerprint is stamped during assembly and the first verification
// pays no rebuild.
//
// BuildParallel fans edge emission across workers, one private Arena
// each over a contiguous guest-edge range, and merges the parts by
// prefix sums. Emission order is deterministic (edge i always lands at
// position i), so the result is bit-identical to a serial build — the
// retained slice-of-slices constructors (Theorem1Reference and
// friends) are the golden models the equivalence tests pin against.

// Arena is a growable flat route store. Routes are appended one hop at
// a time (or whole via Route/RouteDims), grouped into per-guest-edge
// path sets by BeginEdge. Hop validity (adjacency, address range) is
// checked as hops are appended; the first violation is remembered and
// reported by Finish, so constructors need no per-hop error handling.
//
// An Arena is single-goroutine; BuildParallel gives each worker its
// own.
type Arena struct {
	q     *hypercube.Q
	limit hypercube.Node // 2^n, for address range checks

	nodes   []hypercube.Node // every path's nodes, back to back
	ids     []int32          // every path's edge ids, back to back
	pathOff []int32          // per-path id extents; path p's nodes are nodes[pathOff[p]+p : pathOff[p+1]+p+1]
	edgeOff []int32          // per-edge path extents into pathOff

	open     bool // a route is being appended
	inEdge   bool // BeginEdge has been called
	maxLen   int  // longest closed route, in edges
	baseEdge int  // global index of this arena's first edge (set by BuildParallel)

	err error
}

// NewArena returns an empty arena over host q.
func NewArena(q *hypercube.Q) *Arena {
	return &Arena{
		q:       q,
		limit:   hypercube.Node(1) << uint(q.Dims()),
		pathOff: make([]int32, 1),
		edgeOff: make([]int32, 1),
	}
}

// Reserve pre-sizes the arena for about edges guest edges with
// pathsPerEdge paths of idsPerPath edges each. Purely an optimization;
// the arena grows past the hint as needed.
func (a *Arena) Reserve(edges, pathsPerEdge, idsPerPath int) {
	if edges <= 0 || pathsPerEdge <= 0 {
		return
	}
	paths := edges * pathsPerEdge
	ids := paths * idsPerPath
	if cap(a.edgeOff) < edges+1 {
		a.edgeOff = append(make([]int32, 0, edges+1), a.edgeOff...)
	}
	if cap(a.pathOff) < paths+1 {
		a.pathOff = append(make([]int32, 0, paths+1), a.pathOff...)
	}
	if cap(a.ids) < ids {
		a.ids = append(make([]int32, 0, ids), a.ids...)
	}
	if cap(a.nodes) < ids+paths {
		a.nodes = append(make([]hypercube.Node, 0, ids+paths), a.nodes...)
	}
}

// fail records the first error with the current (edge, path) position.
func (a *Arena) fail(format string, args ...any) {
	if a.err != nil {
		return
	}
	edge := a.baseEdge + len(a.edgeOff) - 1
	path := len(a.pathOff) - 1 - int(a.edgeOff[len(a.edgeOff)-1])
	a.err = fmt.Errorf("core: guest edge %d path %d: %s", edge, path, fmt.Sprintf(format, args...))
}

// closeRoute finalizes the route being appended, if any.
func (a *Arena) closeRoute() {
	if !a.open {
		return
	}
	a.open = false
	if int64(len(a.ids)) > math.MaxInt32 {
		if a.err == nil {
			a.err = fmt.Errorf("core: %d path edges exceed the dense id arena limit", len(a.ids))
		}
		return
	}
	if l := len(a.ids) - int(a.pathOff[len(a.pathOff)-1]); l > a.maxLen {
		a.maxLen = l
	}
	a.pathOff = append(a.pathOff, int32(len(a.ids)))
}

// BeginEdge closes the previous guest edge's path set and starts the
// next one. Every edge must receive its paths between consecutive
// BeginEdge calls (or BeginEdge and Finish).
func (a *Arena) BeginEdge() {
	a.closeRoute()
	if a.inEdge {
		a.edgeOff = append(a.edgeOff, int32(len(a.pathOff)-1))
	}
	a.inEdge = true
}

// seal closes the last route and the last edge.
func (a *Arena) seal() {
	a.closeRoute()
	if a.inEdge {
		a.edgeOff = append(a.edgeOff, int32(len(a.pathOff)-1))
		a.inEdge = false
	}
}

// StartRoute begins a new path at node from for the current edge.
func (a *Arena) StartRoute(from hypercube.Node) {
	a.closeRoute()
	if !a.inEdge {
		a.fail("route started before BeginEdge")
		return
	}
	if from >= a.limit {
		a.fail("node %d outside %v", from, a.q)
	}
	a.open = true
	a.nodes = append(a.nodes, from)
}

// Step extends the current path to next, which must be a hypercube
// neighbor of the path's last node.
func (a *Arena) Step(next hypercube.Node) {
	if !a.open {
		a.fail("step before StartRoute")
		return
	}
	last := a.nodes[len(a.nodes)-1]
	x := last ^ next
	if next >= a.limit {
		a.fail("node %d outside %v", next, a.q)
	} else if x == 0 || x&(x-1) != 0 {
		a.fail("nodes %d and %d are not adjacent", last, next)
	}
	if x == 0 {
		x = 1 // error already recorded; keep the id in range
	}
	a.nodes = append(a.nodes, next)
	a.ids = append(a.ids, int32(int(last)*a.q.Dims()+bits.TrailingZeros32(uint32(x))))
}

// StepDim extends the current path across dimension d.
func (a *Arena) StepDim(d int) {
	if !a.open {
		a.fail("step before StartRoute")
		return
	}
	if d < 0 || d >= a.q.Dims() {
		a.fail("dimension %d outside %v", d, a.q)
		return
	}
	last := a.nodes[len(a.nodes)-1]
	a.nodes = append(a.nodes, last^1<<uint(d))
	a.ids = append(a.ids, int32(int(last)*a.q.Dims()+d))
}

// Route appends one whole path given its node sequence.
func (a *Arena) Route(nodes ...hypercube.Node) {
	if len(nodes) == 0 {
		a.fail("empty path")
		return
	}
	a.StartRoute(nodes[0])
	for _, v := range nodes[1:] {
		a.Step(v)
	}
}

// RouteDims is the arena-writing variant of the package-level
// RouteDims: it appends the path that starts at from and crosses the
// given dimensions in order.
func (a *Arena) RouteDims(from hypercube.Node, dims ...int) {
	a.StartRoute(from)
	for _, d := range dims {
		a.StepDim(d)
	}
}

// Err returns the first append error, if any.
func (a *Arena) Err() error { return a.err }

// Finish assembles the embedding from this arena alone: guest edge i's
// path set is the i-th BeginEdge group, in order. The returned
// embedding's Paths are views into the arena and its dense route cache
// is adopted — fingerprint stamped — so the first metric call performs
// no rebuild.
func (a *Arena) Finish(guest *graph.Graph, vertexMap []hypercube.Node) (*Embedding, error) {
	a.seal()
	return assemble(a.q, guest, vertexMap, []*Arena{a})
}

// totals reports the arena's closed sizes (paths, ids, nodes, edges).
func (a *Arena) totals() (paths, ids, nodes, edges int) {
	return len(a.pathOff) - 1, len(a.ids), len(a.nodes), len(a.edgeOff) - 1
}

// assemble merges per-worker arenas (in guest-edge order) into one
// Embedding with dense backing arrays and an adopted route cache. Each
// part must already be closed (Finish/BuildParallel do this).
func assemble(q *hypercube.Q, guest *graph.Graph, vertexMap []hypercube.Node, parts []*Arena) (*Embedding, error) {
	for _, part := range parts {
		if part.err != nil {
			return nil, part.err
		}
	}
	totalPaths, totalIDs, totalNodes, m := 0, 0, 0, 0
	for _, part := range parts {
		p, i, n, e := part.totals()
		totalPaths += p
		totalIDs += i
		totalNodes += n
		m += e
	}
	if m != guest.M() {
		return nil, fmt.Errorf("core: arena holds %d edges for a %d-edge guest", m, guest.M())
	}
	if int64(totalIDs) > math.MaxInt32 {
		return nil, fmt.Errorf("core: %d path edges exceed the dense id arena limit", totalIDs)
	}

	var (
		ids     []int32
		nodes   []hypercube.Node
		pathOff []int32
		edgeOff []int32
		maxLen  int
	)
	if len(parts) == 1 {
		// Adopt the single arena's arrays wholesale.
		a := parts[0]
		ids, nodes, pathOff, edgeOff, maxLen = a.ids, a.nodes, a.pathOff, a.edgeOff, a.maxLen
	} else {
		ids = make([]int32, totalIDs)
		nodes = make([]hypercube.Node, totalNodes)
		pathOff = make([]int32, totalPaths+1)
		edgeOff = make([]int32, m+1)
		// Per-part base offsets by prefix sum, then independent copies.
		idBase := make([]int, len(parts))
		nodeBase := make([]int, len(parts))
		pathBase := make([]int, len(parts))
		edgeBase := make([]int, len(parts))
		for w := 1; w < len(parts); w++ {
			p, i, n, e := parts[w-1].totals()
			idBase[w] = idBase[w-1] + i
			nodeBase[w] = nodeBase[w-1] + n
			pathBase[w] = pathBase[w-1] + p
			edgeBase[w] = edgeBase[w-1] + e
		}
		var wg sync.WaitGroup
		for w, part := range parts {
			wg.Add(1)
			go func(w int, part *Arena) {
				defer wg.Done()
				copy(ids[idBase[w]:], part.ids)
				copy(nodes[nodeBase[w]:], part.nodes)
				for k := 1; k < len(part.pathOff); k++ {
					pathOff[pathBase[w]+k] = part.pathOff[k] + int32(idBase[w])
				}
				for k := 1; k < len(part.edgeOff); k++ {
					edgeOff[edgeBase[w]+k] = part.edgeOff[k] + int32(pathBase[w])
				}
			}(w, part)
			if part.maxLen > maxLen {
				maxLen = part.maxLen
			}
		}
		wg.Wait()
	}

	// Path headers: path p's nodes start at pathOff[p]+p (each path
	// carries one more node than it has edges). Three-index slicing
	// caps every view so a caller appending to a path or a path set
	// copies instead of clobbering its neighbor in the arena.
	allPaths := make([]Path, totalPaths)
	parallelFor(totalPaths, 4096, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			s, e := int(pathOff[p])+p, int(pathOff[p+1])+p+1
			allPaths[p] = nodes[s:e:e]
		}
	})
	paths := make([][]Path, m)
	parallelFor(m, 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s, e := edgeOff[i], edgeOff[i+1]
			paths[i] = allPaths[s:e:e]
		}
	})

	e := &Embedding{
		Host:      q,
		Guest:     guest,
		VertexMap: vertexMap,
		Paths:     paths,
	}
	rc := &routeCache{
		ids:     ids,
		pathOff: pathOff,
		edgeOff: edgeOff,
		maxLen:  maxLen,
	}
	// Stamp the fingerprint from the dense arrays — the same mixing
	// sequence Embedding.fingerprint performs over VertexMap and Paths,
	// but without chasing path headers — and adopt the cache.
	rc.fp = fingerprintDense(q, vertexMap, edgeOff, pathOff, nodes)
	rcMu.Lock()
	e.rc = rc
	rcMu.Unlock()
	return e, nil
}

// fingerprintDense computes Embedding.fingerprint over the dense
// arena form. It must mix exactly the same sequence of values; the
// arena round-trip tests pin the two against each other.
func fingerprintDense(q *hypercube.Q, vertexMap []hypercube.Node, edgeOff, pathOff []int32, nodes []hypercube.Node) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	mix(uint64(q.Dims()))
	mix(uint64(len(vertexMap)))
	for _, v := range vertexMap {
		mix(uint64(v))
	}
	m := len(edgeOff) - 1
	mix(uint64(m))
	for i := 0; i < m; i++ {
		first, past := edgeOff[i], edgeOff[i+1]
		mix(uint64(past - first))
		for p := first; p < past; p++ {
			mix(uint64(pathOff[p+1] - pathOff[p] + 1)) // node count
			s, e := int(pathOff[p])+int(p), int(pathOff[p+1])+int(p)+1
			for _, v := range nodes[s:e] {
				mix(uint64(v))
			}
		}
	}
	return h
}

// BuildParallel builds an embedding by calling emit(i, a) for every
// guest edge i of guest, fanning contiguous edge ranges across
// GOMAXPROCS workers, each with a private Arena, merged by prefix
// sums. emit must append edge i's paths (the arena is already
// positioned on the edge: no BeginEdge call needed) and must be safe
// to run concurrently for distinct edges. hintPaths and hintLen
// pre-size the per-worker arenas (paths per edge / edges per path; 0
// if unknown).
//
// The first error — from emit or from an invalid appended hop —
// belonging to the lowest guest edge wins, so failures are
// deterministic regardless of scheduling.
func BuildParallel(q *hypercube.Q, guest *graph.Graph, vertexMap []hypercube.Node,
	hintPaths, hintLen int, emit func(i int, a *Arena) error) (*Embedding, error) {
	return buildParallel(q, guest, vertexMap, hintPaths, hintLen, runtime.GOMAXPROCS(0), emit)
}

// buildParallel is BuildParallel with an explicit worker count, so
// tests can force real fan-out (and -race interleavings) on any
// machine.
func buildParallel(q *hypercube.Q, guest *graph.Graph, vertexMap []hypercube.Node,
	hintPaths, hintLen int, workers int, emit func(i int, a *Arena) error) (*Embedding, error) {
	m := guest.M()
	const minChunk = 256
	if workers > m/minChunk {
		workers = m / minChunk
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (m + workers - 1) / workers
	type span struct{ lo, hi int }
	var spans []span
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		spans = append(spans, span{lo, hi})
	}
	if len(spans) == 0 {
		spans = []span{{0, 0}}
	}
	parts := make([]*Arena, len(spans))
	var wg sync.WaitGroup
	for w, sp := range spans {
		wg.Add(1)
		go func(w int, sp span) {
			defer wg.Done()
			a := NewArena(q)
			a.baseEdge = sp.lo
			a.Reserve(sp.hi-sp.lo, hintPaths, hintLen)
			for i := sp.lo; i < sp.hi; i++ {
				a.BeginEdge()
				if err := emit(i, a); err != nil {
					if a.err == nil {
						a.err = fmt.Errorf("core: guest edge %d: %w", i, err)
					}
					break
				}
				if a.err != nil {
					break
				}
			}
			a.seal()
			parts[w] = a
		}(w, sp)
	}
	wg.Wait()
	return assemble(q, guest, vertexMap, parts)
}
