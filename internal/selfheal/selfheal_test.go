package selfheal

import (
	"reflect"
	"slices"
	"testing"

	"multipath/internal/core"
	"multipath/internal/cycles"
	"multipath/internal/faults"
	"multipath/internal/netsim"
)

// sliceSink collects latency observations for multiset comparison.
type sliceSink struct{ vals []int }

func (s *sliceSink) Observe(v int) { s.vals = append(s.vals, v) }

// transferRec is one PerTransfer record.
type transferRec struct {
	arrival, done int
	delivered     bool
	retries       int
}

func recordTransfers(m map[int32]transferRec) func(int32, int, int, bool, int) {
	return func(t int32, arrival, done int, delivered bool, retries int) {
		m[t] = transferRec{arrival, done, delivered, retries}
	}
}

func theorem1(t *testing.T, n int) *core.Embedding {
	t.Helper()
	e, err := cycles.Theorem1(n)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// sweepTrace spreads count arrivals round-robin over nb bundles, one
// batch of `rate` per step.
func sweepTrace(count, nb, rate int) *netsim.Trace {
	tr := &netsim.Trace{}
	for i := 0; i < count; i++ {
		tr.Arrivals = append(tr.Arrivals, netsim.Arrival{Step: i / rate, Tmpl: int32(i % nb)})
	}
	return tr
}

func TestSelfHealCleanFabric(t *testing.T) {
	e := theorem1(t, 4)
	sink := &sliceSink{}
	rep, err := Send(e, nil, sweepTrace(32, len(e.Paths), 4), Config{
		Mode:  netsim.StoreAndForward,
		Flits: 4,
		Sink:  sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transfers != 32 || rep.Delivered != 32 || rep.DeliveredFraction != 1 {
		t.Fatalf("clean fabric lost traffic: %+v", rep)
	}
	if rep.Retries != 0 || rep.Reroutes != 0 || rep.Abandoned != 0 || rep.DeadLinks != 0 || rep.DeadlineMisses != 0 {
		t.Fatalf("clean fabric reported healing work: %+v", rep)
	}
	if len(sink.vals) != 32 {
		t.Fatalf("sink saw %d latencies, want 32", len(sink.vals))
	}
	if rep.Engine.Injected != 32 {
		t.Fatalf("reroute strategy injected %d pieces for 32 transfers", rep.Engine.Injected)
	}
}

// TestSelfHealRerouteRecovers kills the first path of edge 0 under a
// live transfer: the piece dies and the session reroutes it onto the
// sibling path after the backoff delay. The transfer right behind it
// is already prefetched (the engine pulls one arrival ahead) so it
// still starts on the doomed path and heals the same way; a *third*
// transfer, emitted after the failure was observed, steers around the
// dead path from the start with zero retries.
func TestSelfHealRerouteRecovers(t *testing.T) {
	e := theorem1(t, 4)
	// Edge 0's bundle: path 0 = [2], path 1 = [0 6 20], path 2 = [1 10 25].
	sched := faults.NewSchedule().FailLink(2, 1)
	tr := &netsim.Trace{Arrivals: []netsim.Arrival{
		{Step: 0, Tmpl: 0},
		{Step: 10, Tmpl: 0},
		{Step: 20, Tmpl: 0},
	}}
	sink := &sliceSink{}
	repaired := &sliceSink{}
	perT := map[int32]transferRec{}
	rep, err := Send(e, []int{0}, tr, Config{
		Mode:         netsim.StoreAndForward,
		Flits:        2,
		MaxRetries:   2,
		Backoff:      FixedBackoff{Steps: 2},
		Faults:       sched,
		Sink:         sink,
		RepairedSink: repaired,
		PerTransfer:  recordTransfers(perT),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transfers != 3 || rep.Delivered != 3 {
		t.Fatalf("want all transfers delivered: %+v", rep)
	}
	if rep.Retries != 2 || rep.Reroutes != 2 {
		t.Fatalf("want two reroutes (first transfer and the prefetched one): %+v", rep)
	}
	if rep.DeadLinks != 1 || rep.Abandoned != 0 {
		t.Fatalf("want one dead link, no abandons: %+v", rep)
	}
	if rep.Engine.Injected != 5 || rep.Engine.FailedMsgs != 2 {
		t.Fatalf("engine pieces: %+v", rep.Engine)
	}
	// Transfers 0 and 1 needed a retry; transfer 2 learned from them.
	if r := perT[0]; !r.delivered || r.retries != 1 {
		t.Fatalf("transfer 0 record %+v, want delivered after 1 retry", r)
	}
	if r := perT[1]; !r.delivered || r.retries != 1 {
		t.Fatalf("transfer 1 record %+v, want delivered after 1 retry (prefetched before the kill)", r)
	}
	if r := perT[2]; !r.delivered || r.retries != 0 {
		t.Fatalf("transfer 2 record %+v, want delivered with 0 retries (dead path avoided)", r)
	}
	if len(sink.vals) != 3 || len(repaired.vals) != 2 {
		t.Fatalf("sinks: all %v repaired %v", sink.vals, repaired.vals)
	}
	// Post-repair latency includes failure detection plus backoff, so
	// it strictly exceeds the steered transfer's clean 3-hop latency.
	steered := perT[2].done - perT[2].arrival
	for _, v := range repaired.vals {
		if v <= steered {
			t.Fatalf("repaired latency %d should exceed the steered transfer's %d", v, steered)
		}
	}
}

// TestSelfHealNoSurvivingPath kills every path of the bundle: the
// transfer cycles through the siblings it can blame and is abandoned
// once no path survives, bounded by MaxRetries.
func TestSelfHealNoSurvivingPath(t *testing.T) {
	e := theorem1(t, 4)
	sched := faults.NewSchedule().FailLink(2, 1).FailLink(0, 1).FailLink(1, 1)
	tr := &netsim.Trace{Arrivals: []netsim.Arrival{{Step: 0, Tmpl: 0}}}
	rep, err := Send(e, []int{0}, tr, Config{
		Mode:       netsim.StoreAndForward,
		Flits:      2,
		MaxRetries: 5,
		Faults:     sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 0 || rep.Abandoned != 1 {
		t.Fatalf("want the transfer abandoned: %+v", rep)
	}
	if rep.Retries > 2 {
		t.Fatalf("cycled more than the surviving siblings: %+v", rep)
	}
	if rep.DeadLinks == 0 {
		t.Fatalf("no dead links learned: %+v", rep)
	}
}

// TestSelfHealDeadline pins the deadline policy: a backoff that can
// only land past the deadline abandons instead of injecting, and the
// miss is counted; a permissive deadline delivers.
func TestSelfHealDeadline(t *testing.T) {
	e := theorem1(t, 4)
	sched := faults.NewSchedule().FailLink(2, 1)
	tr := &netsim.Trace{Arrivals: []netsim.Arrival{{Step: 0, Tmpl: 0}}}
	base := Config{
		Mode:       netsim.StoreAndForward,
		Flits:      2,
		MaxRetries: 3,
		Faults:     sched,
	}

	tight := base
	tight.Backoff = FixedBackoff{Steps: 30}
	tight.Deadline = 10
	rep, err := Send(e, []int{0}, tr, tight)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 0 || rep.Abandoned != 1 || rep.DeadlineMisses != 1 || rep.Retries != 0 {
		t.Fatalf("tight deadline: %+v", rep)
	}
	if rep.DeadlineMissFraction != 1 {
		t.Fatalf("tight deadline miss fraction %v", rep.DeadlineMissFraction)
	}

	loose := base
	loose.Backoff = FixedBackoff{Steps: 30}
	loose.Deadline = 100
	rep, err = Send(e, []int{0}, tr, loose)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 1 || rep.DeadlineMisses != 0 || rep.Retries != 1 {
		t.Fatalf("loose deadline: %+v", rep)
	}
}

// TestSelfHealExpBackoffReplayable pins ExpBackoff determinism: the
// jitter is a stateless hash, so identical runs produce identical
// reports, and a different seed may produce different retry timing but
// the same delivery outcome on this fabric.
func TestSelfHealExpBackoffReplayable(t *testing.T) {
	e := theorem1(t, 4)
	sched := faults.Union(
		faults.Bernoulli(e.Host.DirectedEdges(), 0.06, 11),
		faults.NewSchedule().FailLink(2, 1),
	)
	cfg := Config{
		Mode:       netsim.StoreAndForward,
		Flits:      3,
		MaxRetries: 4,
		Backoff:    ExpBackoff{Base: 1, Cap: 16, Jitter: 0.5, Seed: 42},
		Faults:     sched,
		StepLimit:  4000,
	}
	trace := sweepTrace(48, len(e.Paths), 2)
	first, err := Send(e, nil, trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Send(e, nil, trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("ExpBackoff run not replayable:\n%+v\n%+v", first, again)
	}
	if first.Retries == 0 {
		t.Fatalf("fault mix produced no retries: %+v", first)
	}
	// Delay itself: pure function of (attempt, id).
	b := ExpBackoff{Base: 2, Cap: 32, Jitter: 0.3, Seed: 7}
	for attempt := 1; attempt <= 8; attempt++ {
		d1, d2 := b.Delay(attempt, 5), b.Delay(attempt, 5)
		if d1 != d2 {
			t.Fatalf("Delay(%d, 5) nondeterministic: %d vs %d", attempt, d1, d2)
		}
		if d1 < 1 {
			t.Fatalf("Delay(%d, 5) = %d < 1", attempt, d1)
		}
	}
}

// TestSelfHealIDA pins the zero-retry alternative: with K = 2 of
// width 3, one dead path costs nothing; two dead paths sink the
// transfer without any retry traffic.
func TestSelfHealIDA(t *testing.T) {
	e := theorem1(t, 4)
	tr := &netsim.Trace{Arrivals: []netsim.Arrival{{Step: 0, Tmpl: 0}}}
	base := Config{
		Mode:     netsim.StoreAndForward,
		Flits:    4,
		Strategy: IDA,
		K:        2,
	}

	one := base
	one.Faults = faults.NewSchedule().FailLink(2, 1)
	rep, err := Send(e, []int{0}, tr, one)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 1 || rep.Retries != 0 || rep.Abandoned != 0 {
		t.Fatalf("IDA with one dead path: %+v", rep)
	}
	if rep.Engine.Injected != 3 || rep.Engine.FailedMsgs != 1 {
		t.Fatalf("IDA pieces: %+v", rep.Engine)
	}

	two := base
	two.Faults = faults.NewSchedule().FailLink(2, 1).FailLink(0, 1)
	rep, err = Send(e, []int{0}, tr, two)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 0 || rep.Retries != 0 || rep.Abandoned != 1 {
		t.Fatalf("IDA with two dead paths: %+v", rep)
	}
}

// TestSelfHealShardInvariance is the tentpole determinism claim at the
// session level: the full Report, the PerTransfer records, and the
// latency multisets are identical at every shard count, for both
// strategies, under a coupled-Bernoulli fault draw.
func TestSelfHealShardInvariance(t *testing.T) {
	e := theorem1(t, 4)
	sched := faults.Bernoulli(e.Host.DirectedEdges(), 0.08, 3)
	trace := sweepTrace(64, len(e.Paths), 4)
	for _, strat := range []Strategy{Reroute, IDA} {
		var baseRep *Report
		var basePerT map[int32]transferRec
		var baseSink []int
		for _, shards := range []int{1, 2, 3, 8} {
			perT := map[int32]transferRec{}
			sink := &sliceSink{}
			rep, err := Send(e, nil, trace, Config{
				Mode:        netsim.StoreAndForward,
				Flits:       3,
				Strategy:    strat,
				K:           2,
				MaxRetries:  3,
				Backoff:     ExpBackoff{Base: 1, Jitter: 0.4, Seed: 9},
				Faults:      sched,
				StepLimit:   4000,
				Shards:      shards,
				Sink:        sink,
				PerTransfer: recordTransfers(perT),
			})
			if err != nil {
				t.Fatalf("%v/shards=%d: %v", strat, shards, err)
			}
			slices.Sort(sink.vals)
			if baseRep == nil {
				baseRep, basePerT, baseSink = rep, perT, sink.vals
				continue
			}
			if !reflect.DeepEqual(rep, baseRep) {
				t.Fatalf("%v/shards=%d: report diverged:\n%+v\nvs shards=1\n%+v", strat, shards, *rep, *baseRep)
			}
			if !reflect.DeepEqual(perT, basePerT) {
				t.Fatalf("%v/shards=%d: per-transfer records diverged", strat, shards)
			}
			if !reflect.DeepEqual(sink.vals, baseSink) {
				t.Fatalf("%v/shards=%d: latency multiset diverged", strat, shards)
			}
		}
		if baseRep.Transfers != 64 {
			t.Fatalf("%v: %d transfers, want 64", strat, baseRep.Transfers)
		}
	}
}

// TestSelfHealConservation generalizes the conservation invariant over
// the healed run: every injected piece is delivered or failed, flits
// are conserved, and the injected total decomposes into base pieces
// plus retries (moved + dropped + rerouted accounting).
func TestSelfHealConservation(t *testing.T) {
	e := theorem1(t, 4)
	sched := faults.Bernoulli(e.Host.DirectedEdges(), 0.3, 17)
	perT := map[int32]transferRec{}
	rep, err := Send(e, nil, sweepTrace(96, len(e.Paths), 3), Config{
		Mode:        netsim.StoreAndForward,
		Flits:       2,
		MaxRetries:  4,
		Backoff:     FixedBackoff{Steps: 1},
		Faults:      sched,
		StepLimit:   8000,
		PerTransfer: recordTransfers(perT),
	})
	if err != nil {
		t.Fatal(err)
	}
	en := &rep.Engine
	if en.TimedOut {
		t.Fatalf("run timed out; the decomposition below assumes a drained run: %+v", en)
	}
	if en.FlitsMoved+en.DroppedFlits != en.InjectedHops {
		t.Fatalf("flit conservation: moved %d + dropped %d != injected hops %d",
			en.FlitsMoved, en.DroppedFlits, en.InjectedHops)
	}
	if en.DeliveredMsgs+en.FailedMsgs != en.Injected {
		t.Fatalf("piece conservation: delivered %d + failed %d != injected %d",
			en.DeliveredMsgs, en.FailedMsgs, en.Injected)
	}
	// Reroute strategy: one base piece per transfer, so injected ==
	// transfers + retries (the run drained, so every emission entered).
	if en.Injected != rep.Transfers+rep.Retries {
		t.Fatalf("injected %d != transfers %d + retries %d", en.Injected, rep.Transfers, rep.Retries)
	}
	// Path cycling never reuses a path containing the blamed link, so
	// every retry here is a reroute.
	if rep.Retries != rep.Reroutes {
		t.Fatalf("retries %d != reroutes %d", rep.Retries, rep.Reroutes)
	}
	if rep.Retries < 5 || rep.Abandoned == 0 {
		t.Fatalf("fault mix too tame to exercise healing: %+v", rep)
	}
	sum := 0
	for _, r := range perT {
		sum += r.retries
	}
	if sum != rep.Retries {
		t.Fatalf("per-transfer retries sum %d != report retries %d", sum, rep.Retries)
	}
	if len(perT) != rep.Transfers {
		t.Fatalf("PerTransfer fired %d times for %d transfers", len(perT), rep.Transfers)
	}
}

// TestSelfHealTimeout pins StepLimit semantics: in-flight transfers at
// the limit are reported undelivered (done=-1), never retried (the run
// is over), and count as deadline misses when a deadline is set.
func TestSelfHealTimeout(t *testing.T) {
	e := theorem1(t, 4)
	perT := map[int32]transferRec{}
	rep, err := Send(e, []int{0}, &netsim.Trace{Arrivals: []netsim.Arrival{{Step: 0, Tmpl: 0}}}, Config{
		Mode:        netsim.StoreAndForward,
		Flits:       8,
		Deadline:    50,
		StepLimit:   2,
		PerTransfer: recordTransfers(perT),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Engine.TimedOut {
		t.Fatalf("run should have timed out: %+v", rep.Engine)
	}
	if rep.Delivered != 0 || rep.Retries != 0 || rep.Abandoned != 0 || rep.DeadlineMisses != 1 {
		t.Fatalf("timeout accounting: %+v", rep)
	}
	if r := perT[0]; r.delivered || r.done != -1 {
		t.Fatalf("timed-out transfer record %+v", r)
	}
}

// TestSelfHealValidation covers the argument errors.
func TestSelfHealValidation(t *testing.T) {
	e := theorem1(t, 4)
	if _, err := Send(e, nil, &netsim.Trace{Arrivals: []netsim.Arrival{{Step: 0, Tmpl: 99}}}, Config{}); err == nil {
		t.Fatal("out-of-range bundle accepted")
	}
	if _, err := Send(e, nil, &netsim.Trace{Arrivals: []netsim.Arrival{{Step: 5, Tmpl: 0}, {Step: 1, Tmpl: 0}}}, Config{}); err == nil {
		t.Fatal("decreasing steps accepted")
	}
	if _, err := Send(e, []int{-1}, &netsim.Trace{}, Config{}); err == nil {
		t.Fatal("negative edge index accepted")
	}
}

// TestExpBackoffJitterRespectsCap pins the Cap-is-final-delay fix: an
// earlier version applied jitter after clamping, so delays escaped to
// Cap·(1+Jitter). Now no (attempt, id) draw may exceed Cap — while the
// E28 bench configuration (Base 2, Cap 32, Jitter 0.5, healMaxRetries
// 3) must keep its exact historical delays, which never reached the
// clamp (max pre-jitter delay 8, max post-jitter 12 < 32).
func TestExpBackoffJitterRespectsCap(t *testing.T) {
	b := ExpBackoff{Base: 3, Cap: 10, Jitter: 0.9, Seed: 11}
	for attempt := 1; attempt <= 12; attempt++ {
		for id := int32(0); id < 50; id++ {
			if d := b.Delay(attempt, id); d > b.Cap {
				t.Fatalf("Delay(%d, %d) = %d exceeds Cap %d", attempt, id, d, b.Cap)
			}
		}
	}
	e28 := ExpBackoff{Base: 2, Cap: 32, Jitter: 0.5, Seed: 1}
	for attempt := 1; attempt <= 4; attempt++ {
		for id := int32(0); id < 64; id++ {
			pre := 2 << (attempt - 1)
			want := pre + int(float64(pre)*0.5*faults.Hash01(1, int(id), attempt))
			if d := e28.Delay(attempt, id); d != want {
				t.Fatalf("E28 config Delay(%d, %d) = %d, want unchanged %d", attempt, id, d, want)
			}
		}
	}
}
