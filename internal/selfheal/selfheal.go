// Package selfheal is the self-healing transport: a session layer over
// the open-loop engine where each logical transfer owns the Width()
// edge-disjoint host paths of its guest edge and reacts to link
// failures while traffic keeps flowing. It is the open-loop twin of
// internal/transport — transport heals between closed-loop rounds
// (run to completion, then resend), selfheal heals *in flight*:
//
//   - The session registers as the run's netsim.FaultListener, so the
//     engine reports every link death and the message ids it doomed,
//     in an order that is canonical across shard counts.
//   - The session is also the run's netsim.ArrivalSource. A failed
//     piece is re-enqueued as a new arrival at a backoff-chosen later
//     step on a surviving sibling path (cycling path order exactly
//     like transport's closed-loop failover); the engine re-polls the
//     source after exhaustion whenever a listener is attached, so
//     reroutes scheduled mid-run are picked up. Links reported dead
//     steer both retries and *new* transfers away from doomed paths.
//   - Policy objects keep every run replayable: bounded retries, a
//     per-transfer relative deadline, and deterministic backoff
//     (fixed, or seeded exponential with stateless hash jitter).
//   - Strategy IDA is the zero-retry alternative: each transfer
//     disperses over all paths up front and completes when any K
//     pieces land, k-of-n instead of retry.
//
// Determinism: every session decision is driven by callbacks the
// engine fires in the same canonical order at every shard count, and
// the jitter hash needs no shared rng state, so a (trace, config,
// shards) triple replays bit-identically and the aggregate Report is
// identical across shard counts.
package selfheal

import (
	"container/heap"
	"fmt"
	"math"

	"multipath/internal/core"
	"multipath/internal/faults"
	"multipath/internal/netsim"
	"multipath/internal/traffic"
)

// Strategy selects how a transfer uses its disjoint path bundle.
type Strategy int

const (
	// Reroute sends one piece on one path and, on failure, re-enqueues
	// it on the next surviving path in cyclic order after a backoff
	// delay — at most Config.MaxRetries times.
	Reroute Strategy = iota
	// IDA disperses each transfer over all paths of its bundle at
	// arrival and delivers when any Config.K pieces land — zero
	// retries, pure k-of-n redundancy (§6 of the paper).
	IDA
)

func (s Strategy) String() string {
	if s == IDA {
		return "ida"
	}
	return "reroute"
}

// Backoff maps a retry attempt to a delay in steps. Implementations
// must be deterministic: the self-healing session calls Delay from
// engine callbacks whose order is canonical across shard counts, and
// replayability of whole runs reduces to replayability of Delay.
type Backoff interface {
	// Delay returns the number of steps to wait before injecting retry
	// `attempt` (1-based) of transfer id. Negative returns are treated
	// as 0 (retry next step).
	Delay(attempt int, id int32) int
}

// FixedBackoff waits the same number of steps before every retry.
type FixedBackoff struct {
	Steps int
}

// Delay implements Backoff.
func (b FixedBackoff) Delay(int, int32) int { return b.Steps }

// ExpBackoff is deterministic seeded exponential backoff with jitter:
// attempt k waits Base·2^(k-1) steps plus a jitter of up to Jitter
// times that, drawn by a stateless hash of (Seed, transfer id,
// attempt) — no shared rng state, so the draw is independent of
// callback interleaving and replays exactly. Cap bounds the *final*
// delay: jitter is applied first and the sum clamped, so Delay never
// exceeds Cap. (An earlier version clamped before adding jitter,
// letting delays escape to Cap·(1+Jitter); the regression test pins
// the fixed order.)
type ExpBackoff struct {
	Base   int     // first retry delay in steps (values < 1 mean 1)
	Cap    int     // ceiling on the post-jitter delay; 0 = uncapped
	Jitter float64 // jitter fraction of the delay, typically in [0, 1]
	Seed   int64   // jitter hash seed
}

// Delay implements Backoff.
func (b ExpBackoff) Delay(attempt int, id int32) int {
	base := b.Base
	if base < 1 {
		base = 1
	}
	sh := attempt - 1
	if sh > 30 {
		sh = 30 // past ~10^9 steps the exact value no longer matters
	}
	d := base << sh
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	if b.Jitter > 0 {
		d += int(float64(d) * b.Jitter * faults.Hash01(b.Seed, int(id), attempt))
		if b.Cap > 0 && d > b.Cap {
			d = b.Cap
		}
	}
	return d
}

// Config parameterizes a self-healing run.
type Config struct {
	// Mode is the switching discipline (StoreAndForward or CutThrough).
	Mode netsim.Mode
	// Flits is the payload size of one transfer. Reroute sends it
	// whole; IDA splits it into ceil(Flits/K)-flit pieces, one per
	// path. Values < 1 mean 1.
	Flits int
	// Strategy selects Reroute (retry on surviving siblings) or IDA
	// (k-of-n dispersal, zero retries).
	Strategy Strategy
	// K is the IDA threshold: pieces needed to reconstruct. Clamped to
	// [1, width] per bundle; values < 1 mean 1.
	K int
	// MaxRetries bounds the retry injections of one transfer (Reroute
	// only). 0 means a failed transfer is abandoned immediately.
	MaxRetries int
	// Deadline, when positive, is the per-transfer completion budget in
	// steps relative to its arrival: a transfer not delivered within
	// Deadline steps counts as a deadline miss, and retries that could
	// only land past the deadline are not injected at all.
	Deadline int
	// Backoff schedules retry delays; nil means FixedBackoff{Steps: 1}.
	Backoff Backoff
	// Faults is the link fault schedule (nil for a clean fabric).
	Faults netsim.LinkFaults
	// StepLimit and Shards pass through to the open-loop engine: the
	// graceful timeout and the worker partition width.
	StepLimit int
	Shards    int
	// MeasureAfter is the warm-up cutoff for the latency sinks: only
	// transfers arriving at or after it are observed.
	MeasureAfter int
	// Sink, when non-nil, receives completion_step − arrival_step for
	// every delivered transfer arriving at or after MeasureAfter.
	Sink netsim.LatencySink
	// RepairedSink, when non-nil, receives the same latency for the
	// delivered transfers that needed at least one retry — the
	// post-repair latency distribution.
	RepairedSink netsim.LatencySink
	// PerTransfer, when non-nil, is called once per transfer: at its
	// completion step (delivered=true), or after the run for transfers
	// that never completed (delivered=false, done=-1). retries is the
	// number of retry pieces emitted for it.
	PerTransfer func(t int32, arrival, done int, delivered bool, retries int)
	// Probe passes through to the engine (netsim.OpenLoopOpts.Probe).
	Probe netsim.Probe
}

// Report aggregates one self-healing run. Piece-level engine counters
// (and the conservation invariant FlitsMoved + DroppedFlits ==
// InjectedHops) are in Engine; the session-level invariant is
// Engine.Injected == base pieces injected + Retries.
type Report struct {
	// Transfers is the number of logical transfers started (an IDA
	// transfer counts once, not per piece).
	Transfers int
	// Delivered counts transfers that completed (Reroute: the piece
	// landed; IDA: K pieces landed), and DeliveredFraction is the
	// ratio over Transfers.
	Delivered         int
	DeliveredFraction float64
	// DeadlineMisses counts transfers with Config.Deadline > 0 that
	// did not complete within the deadline (late or never).
	DeadlineMisses       int
	DeadlineMissFraction float64
	// Retries is the number of retry pieces actually injected;
	// Reroutes counts those injected on a different path than the
	// failed attempt.
	Retries  int
	Reroutes int
	// Abandoned counts transfers the session gave up on: retries
	// exhausted, no surviving sibling path, or deadline unreachable.
	Abandoned int
	// DeadLinks is the number of distinct links the session learned
	// were permanently down.
	DeadLinks int
	// Engine is the underlying open-loop result (piece granularity).
	Engine netsim.OpenLoopResult
}

// transfer is one logical transfer's session state.
type transfer struct {
	bundle    int32
	arrival   int
	firstPath int16 // Reroute: path of the initial piece
	attempt   int   // retries scheduled so far
	delivered int   // pieces landed
	failed    int   // pieces definitively lost (IDA accounting)
	retries   int   // retry pieces emitted
	done      bool  // no further session action for this transfer
	ok        bool
	abandoned bool
	doneStep  int
}

// pieceMeta maps an engine message id (emission index) back to its
// transfer, path, and retry provenance.
type pieceMeta struct {
	t        int32
	path     int16
	retry    bool
	rerouted bool
}

// retryEntry is one scheduled reroute, ordered by (step, seq) so heap
// order is total and replayable. prev is the failed attempt's path —
// the baseline for the reroute/retry distinction.
type retryEntry struct {
	step int
	seq  int
	t    int32
	path int16
	prev int16
}

type retryHeap []retryEntry

func (h retryHeap) Len() int { return len(h) }
func (h retryHeap) Less(i, j int) bool {
	if h[i].step != h[j].step {
		return h[i].step < h[j].step
	}
	return h[i].seq < h[j].seq
}
func (h retryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *retryHeap) Push(x any)   { *h = append(*h, x.(retryEntry)) }
func (h *retryHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// bundle is one guest edge's path group: template ids in path order
// plus the strategy-resolved piece counts.
type bundle struct {
	group  []int32
	k      int // pieces needed to complete
	pieces int // pieces injected at arrival (Reroute 1, IDA width)
}

// session is the run state: ArrivalSource and FaultListener in one.
type session struct {
	cfg     *Config
	backoff Backoff
	tmpls   []*netsim.Message
	bundles []bundle

	base   []netsim.Arrival
	baseAt int

	// Mid-expansion state: the transfer whose pieces are being
	// emitted (IDA injects one arrival per path), or expT = -1.
	expT    int32
	expNext int
	expStep int

	lastEmitted int
	seq         int
	rq          retryHeap

	transfers []transfer
	meta      []pieceMeta
	dead      map[int]bool
}

// Send runs one self-healing open-loop session: each arrival in the
// trace starts one transfer on the path bundle of guest edge
// edges[a.Tmpl] of the embedding (edges nil means a.Tmpl indexes
// e.Paths directly). Arrivals must have nondecreasing, nonnegative
// steps. The aggregate Report is identical for every Config.Shards
// value.
func Send(e *core.Embedding, edges []int, arrivals *netsim.Trace, cfg Config) (*Report, error) {
	if cfg.Flits < 1 {
		cfg.Flits = 1
	}
	tmpls, groups, err := traffic.PathTemplates(e, edges, 1)
	if err != nil {
		return nil, err
	}
	s := &session{
		cfg:     &cfg,
		backoff: cfg.Backoff,
		tmpls:   tmpls,
		bundles: make([]bundle, len(groups)),
		base:    arrivals.Arrivals,
		expT:    -1,
		dead:    make(map[int]bool),
	}
	if s.backoff == nil {
		s.backoff = FixedBackoff{Steps: 1}
	}
	for b, group := range groups {
		width := len(group)
		if width == 0 {
			return nil, fmt.Errorf("selfheal: bundle %d has no paths", b)
		}
		bu := bundle{group: group, k: 1, pieces: 1}
		if cfg.Strategy == IDA {
			k := cfg.K
			if k < 1 {
				k = 1
			}
			if k > width {
				k = width
			}
			bu.k, bu.pieces = k, width
			piece := (cfg.Flits + k - 1) / k
			for _, ti := range group {
				tmpls[ti].Flits = piece
			}
		} else {
			for _, ti := range group {
				tmpls[ti].Flits = cfg.Flits
			}
		}
		s.bundles[b] = bu
	}
	last := 0
	for i, a := range s.base {
		if a.Step < 0 || a.Step < last {
			return nil, fmt.Errorf("selfheal: arrival %d: steps must be nonnegative and nondecreasing (step %d after %d)", i, a.Step, last)
		}
		last = a.Step
		if a.Tmpl < 0 || int(a.Tmpl) >= len(s.bundles) {
			return nil, fmt.Errorf("selfheal: arrival %d names bundle %d of %d", i, a.Tmpl, len(s.bundles))
		}
	}

	opts := netsim.OpenLoopOpts{
		Mode:       cfg.Mode,
		Faults:     cfg.Faults,
		StepLimit:  cfg.StepLimit,
		PerMessage: s.perMessage,
		Probe:      cfg.Probe,
		Listener:   s,
	}
	olr, err := netsim.SimulateOpenLoopSharded(tmpls, s, opts, cfg.Shards)
	if err != nil {
		return nil, err
	}
	return s.finalize(olr), nil
}

// Next implements netsim.ArrivalSource: merge the base trace with the
// retry queue into one nondecreasing arrival stream. A retry whose
// nominal step has already passed relative to the last emission is
// clamped forward to keep the stream monotone (the engine re-polls
// after this step's failures, so the clamp only fires when a backoff
// of 0 lands on the current step after later arrivals already went
// out — the piece is injected at the earliest legal step).
func (s *session) Next() (netsim.Arrival, bool) {
	for {
		if s.expT >= 0 {
			return s.emitPiece(), true
		}
		baseStep, retryStep := math.MaxInt, math.MaxInt
		if s.baseAt < len(s.base) {
			baseStep = s.base[s.baseAt].Step
		}
		if len(s.rq) > 0 {
			retryStep = s.rq[0].step
			if retryStep < s.lastEmitted {
				retryStep = s.lastEmitted
			}
		}
		if baseStep == math.MaxInt && retryStep == math.MaxInt {
			return netsim.Arrival{}, false
		}
		if baseStep <= retryStep {
			a := s.base[s.baseAt]
			s.baseAt++
			s.newTransfer(a)
			return s.emitPiece(), true
		}
		re := heap.Pop(&s.rq).(retryEntry)
		tr := &s.transfers[re.t]
		path := int(re.path)
		if s.pathDead(&s.bundles[tr.bundle], path) {
			// The chosen sibling died while the retry waited; steer to
			// the next survivor, or give up.
			np := s.nextPath(&s.bundles[tr.bundle], path)
			if np < 0 {
				tr.done, tr.abandoned = true, true
				continue
			}
			path = np
		}
		tr.retries++
		s.lastEmitted = retryStep
		s.meta = append(s.meta, pieceMeta{
			t: re.t, path: int16(path), retry: true,
			rerouted: path != int(re.prev),
		})
		return netsim.Arrival{Step: retryStep, Tmpl: s.bundles[tr.bundle].group[path]}, true
	}
}

// newTransfer opens transfer state for a base arrival and arms the
// expansion emitter. Reroute picks the first path not known dead, so
// new traffic steers around observed failures from the start.
func (s *session) newTransfer(a netsim.Arrival) {
	b := &s.bundles[a.Tmpl]
	tr := transfer{bundle: a.Tmpl, arrival: a.Step, doneStep: -1}
	if s.cfg.Strategy != IDA {
		for j := range b.group {
			if !s.pathDead(b, j) {
				tr.firstPath = int16(j)
				break
			}
		}
	}
	s.expT = int32(len(s.transfers))
	s.expNext = 0
	s.expStep = a.Step
	s.transfers = append(s.transfers, tr)
}

// emitPiece emits the next piece of the transfer under expansion.
func (s *session) emitPiece() netsim.Arrival {
	tr := &s.transfers[s.expT]
	b := &s.bundles[tr.bundle]
	path := int(tr.firstPath)
	if s.cfg.Strategy == IDA {
		path = s.expNext
	}
	s.meta = append(s.meta, pieceMeta{t: s.expT, path: int16(path)})
	s.expNext++
	if s.expNext >= b.pieces {
		s.expT = -1
	}
	s.lastEmitted = s.expStep
	return netsim.Arrival{Step: s.expStep, Tmpl: b.group[path]}
}

// LinkDown implements netsim.FaultListener: record the dead link so
// path cycling and new transfers avoid it.
func (s *session) LinkDown(step, link int, permanent bool) {
	if permanent {
		s.dead[link] = true
	}
}

// MsgFailed implements netsim.FaultListener: blame the link, then
// decide the failed piece's fate — reroute after backoff (Reroute) or
// pure loss accounting (IDA). link -1 is the StepLimit sweep: the run
// is over, nothing to schedule.
func (s *session) MsgFailed(step int, msg int32, link int) {
	if link >= 0 {
		s.dead[link] = true
	}
	m := s.meta[msg]
	tr := &s.transfers[m.t]
	if tr.done {
		return
	}
	b := &s.bundles[tr.bundle]
	if s.cfg.Strategy == IDA {
		tr.failed++
		if b.pieces-tr.failed < b.k {
			tr.done, tr.abandoned = true, true
		}
		return
	}
	if link < 0 {
		return
	}
	if tr.attempt >= s.cfg.MaxRetries {
		tr.done, tr.abandoned = true, true
		return
	}
	next := s.nextPath(b, int(m.path))
	if next < 0 {
		tr.done, tr.abandoned = true, true
		return
	}
	tr.attempt++
	delay := s.backoff.Delay(tr.attempt, m.t)
	if delay < 0 {
		delay = 0
	}
	rstep := step + delay
	if s.cfg.Deadline > 0 && rstep > tr.arrival+s.cfg.Deadline {
		tr.done, tr.abandoned = true, true
		return
	}
	heap.Push(&s.rq, retryEntry{step: rstep, seq: s.seq, t: m.t, path: int16(next), prev: m.path})
	s.seq++
}

// perMessage is the engine's PerMessage callback: fold deliveries into
// transfer completion (failures arrive via MsgFailed with the blamed
// link attached).
func (s *session) perMessage(msg int32, arrival, done int, delivered bool) {
	if !delivered {
		return
	}
	m := s.meta[msg]
	tr := &s.transfers[m.t]
	tr.delivered++
	if tr.done || tr.delivered < s.bundles[tr.bundle].k {
		return
	}
	tr.done, tr.ok = true, true
	tr.doneStep = done
	lat := done - tr.arrival
	if tr.arrival >= s.cfg.MeasureAfter {
		if s.cfg.Sink != nil {
			s.cfg.Sink.Observe(lat)
		}
		if s.cfg.RepairedSink != nil && tr.retries > 0 {
			s.cfg.RepairedSink.Observe(lat)
		}
	}
	if s.cfg.PerTransfer != nil {
		s.cfg.PerTransfer(m.t, tr.arrival, done, true, tr.retries)
	}
}

// nextPath returns the next path after `from` in cyclic order whose
// links are not known dead, or -1 when no sibling survives. The failed
// path itself always contains the freshly blamed link, so a retry
// never reuses it.
func (s *session) nextPath(b *bundle, from int) int {
	w := len(b.group)
	for i := 1; i <= w; i++ {
		j := (from + i) % w
		if !s.pathDead(b, j) {
			return j
		}
	}
	return -1
}

// pathDead reports whether any link of bundle path j is known dead.
func (s *session) pathDead(b *bundle, j int) bool {
	for _, id := range s.tmpls[b.group[j]].Route {
		if s.dead[id] {
			return true
		}
	}
	return false
}

// finalize folds the session state and the engine result into a
// Report. Retries/Reroutes are recounted over the *injected* prefix of
// the emission log (the engine pulls one arrival ahead, so the last
// emission may never have entered the run).
func (s *session) finalize(olr *netsim.OpenLoopResult) *Report {
	rep := &Report{Transfers: len(s.transfers), Engine: *olr, DeadLinks: len(s.dead)}
	for t := range s.transfers {
		tr := &s.transfers[t]
		if tr.ok {
			rep.Delivered++
		} else {
			if tr.abandoned {
				rep.Abandoned++
			}
			if s.cfg.PerTransfer != nil {
				s.cfg.PerTransfer(int32(t), tr.arrival, -1, false, tr.retries)
			}
		}
		if s.cfg.Deadline > 0 && (!tr.ok || tr.doneStep-tr.arrival > s.cfg.Deadline) {
			rep.DeadlineMisses++
		}
	}
	for _, m := range s.meta[:olr.Injected] {
		if m.retry {
			rep.Retries++
			if m.rerouted {
				rep.Reroutes++
			}
		}
	}
	if rep.Transfers > 0 {
		rep.DeliveredFraction = float64(rep.Delivered) / float64(rep.Transfers)
		rep.DeadlineMissFraction = float64(rep.DeadlineMisses) / float64(rep.Transfers)
	}
	return rep
}
