package selfheal

import (
	"reflect"
	"slices"
	"testing"

	"multipath/internal/cycles"
	"multipath/internal/faults"
	"multipath/internal/netsim"
)

// decodeHealArrivals builds a nondecreasing arrival trace over nb
// bundles from fuzz bytes, mixing bursts, short gaps, and leaps —
// the same shapes the netsim open-loop fuzzers use.
func decodeHealArrivals(data []byte, nb int) *netsim.Trace {
	at := 0
	next := func() int {
		if at >= len(data) {
			return 0
		}
		b := int(data[at])
		at++
		return b
	}
	count := next() % 25
	tr := &netsim.Trace{}
	step := 0
	for i := 0; i < count; i++ {
		switch next() % 8 {
		case 0: // long gap: the engine should leap over it
			step += 20 + next()
		case 1, 2: // same-step burst
		default:
			step += next() % 4
		}
		tr.Arrivals = append(tr.Arrivals, netsim.Arrival{Step: step, Tmpl: int32(next() % nb)})
	}
	return tr
}

// decodeHealSchedule builds a bounded schedule over the host's
// directed links from fuzz bytes.
func decodeHealSchedule(data []byte, numLinks int) *faults.Schedule {
	s := faults.NewSchedule()
	at := 0
	next := func() int {
		if at >= len(data) {
			return 0
		}
		b := int(data[at])
		at++
		return b
	}
	events := next() % 9
	for i := 0; i < events; i++ {
		link := next() % numLinks
		from := 1 + next()%48
		if next()%2 == 0 {
			s.FailLink(link, from)
		} else {
			s.FailLinkTransient(link, from, from+1+next()%48)
		}
	}
	return s
}

// FuzzSelfHealOpenLoop holds the self-healing session's determinism
// contract on the Theorem 1 width-3 embedding of Q_4, for random
// arrival traces × fault schedules × policy configurations:
//
//   - shard invariance: the Report, the per-transfer records, and the
//     latency multisets are identical at shard counts {1, 2, 3, 8};
//   - replay: running the same configuration twice is bit-identical;
//   - conservation: the engine moves or drops exactly the injected
//     flit-hops, and on drained (non-timed-out) runs every transfer is
//     delivered or abandoned and the injected piece count decomposes
//     as base pieces + Retries;
//   - IDA never retries.
func FuzzSelfHealOpenLoop(f *testing.F) {
	e, err := cycles.Theorem1(4)
	if err != nil {
		f.Fatal(err)
	}
	numLinks := e.Host.DirectedEdges()
	nb := len(e.Paths)

	f.Add([]byte{}, []byte{}, []byte{})
	f.Add([]byte{9, 3, 0, 4, 1, 5, 6, 2, 7, 3, 1}, []byte{4, 2, 1, 0, 10, 3, 1, 25, 9, 0}, []byte{1, 3, 2, 5})
	f.Add([]byte{14, 0, 200, 3, 0, 0, 1, 4, 5, 2, 2}, []byte{8, 0, 1, 0, 6, 2, 1, 20, 4, 1, 1, 7, 5, 0}, []byte{0, 1, 4, 17})
	f.Add([]byte{20, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, []byte{6, 2, 1, 0, 1, 2, 0, 10, 3, 0}, []byte{1, 0, 0, 200})
	f.Fuzz(func(t *testing.T, arrData, schedData, cfgData []byte) {
		cb := func(i int) int {
			if i < len(cfgData) {
				return int(cfgData[i])
			}
			return 0
		}
		cfg := Config{
			Mode:       netsim.Mode(cb(0) % 2),
			Flits:      1 + cb(1)%6,
			MaxRetries: cb(2) % 4,
			Faults:     decodeHealSchedule(schedData, numLinks),
			StepLimit:  40 + cb(3),
		}
		if cb(0)%4 >= 2 {
			cfg.Strategy = IDA
			cfg.K = 1 + cb(2)%3
		}
		switch cb(4) % 3 {
		case 0:
			cfg.Backoff = FixedBackoff{Steps: cb(5) % 5}
		case 1:
			cfg.Backoff = ExpBackoff{Base: 1 + cb(5)%3, Cap: 16, Jitter: 0.5, Seed: int64(cb(6))}
		}
		if cb(7)%2 == 1 {
			cfg.Deadline = 5 + cb(7)
		}
		tr := decodeHealArrivals(arrData, nb)

		type run struct {
			rep  *Report
			perT map[int32]transferRec
			sink []int
		}
		do := func(shards int) (*run, error) {
			c := cfg
			c.Shards = shards
			perT := map[int32]transferRec{}
			sink := &sliceSink{}
			c.PerTransfer = recordTransfers(perT)
			c.Sink = sink
			rep, err := Send(e, nil, tr, c)
			if err != nil {
				return nil, err
			}
			slices.Sort(sink.vals)
			return &run{rep: rep, perT: perT, sink: sink.vals}, nil
		}

		want, wantErr := do(1)
		for _, shards := range []int{1, 2, 3, 8} {
			got, err := do(shards)
			if (wantErr == nil) != (err == nil) {
				t.Fatalf("shards=%d: error mismatch: %v vs %v", shards, err, wantErr)
			}
			if wantErr != nil {
				if err.Error() != wantErr.Error() {
					t.Fatalf("shards=%d: error text %q vs %q", shards, err, wantErr)
				}
				continue
			}
			if !reflect.DeepEqual(got.rep, want.rep) {
				t.Fatalf("shards=%d: report diverged:\n%+v\nvs shards=1\n%+v", shards, *got.rep, *want.rep)
			}
			if !reflect.DeepEqual(got.perT, want.perT) {
				t.Fatalf("shards=%d: per-transfer records diverged", shards)
			}
			if !reflect.DeepEqual(got.sink, want.sink) {
				t.Fatalf("shards=%d: latency multisets diverged: %v vs %v", shards, got.sink, want.sink)
			}
		}
		if wantErr != nil {
			return
		}

		rep := want.rep
		en := &rep.Engine
		if en.FlitsMoved+en.DroppedFlits != en.InjectedHops {
			t.Fatalf("conservation: moved %d + dropped %d != injected hops %d", en.FlitsMoved, en.DroppedFlits, en.InjectedHops)
		}
		if en.DeliveredMsgs+en.FailedMsgs != en.Injected {
			t.Fatalf("pieces: delivered %d + failed %d != injected %d", en.DeliveredMsgs, en.FailedMsgs, en.Injected)
		}
		if rep.Transfers > len(tr.Arrivals) {
			t.Fatalf("transfers %d > arrivals %d", rep.Transfers, len(tr.Arrivals))
		}
		if cfg.Strategy == IDA && rep.Retries != 0 {
			t.Fatalf("IDA retried: %+v", rep)
		}
		if rep.Reroutes > rep.Retries {
			t.Fatalf("reroutes %d > retries %d", rep.Reroutes, rep.Retries)
		}
		if !en.TimedOut {
			if rep.Transfers != len(tr.Arrivals) {
				t.Fatalf("drained run: transfers %d, arrivals %d", rep.Transfers, len(tr.Arrivals))
			}
			if rep.Delivered+rep.Abandoned != rep.Transfers {
				t.Fatalf("drained run: delivered %d + abandoned %d != transfers %d", rep.Delivered, rep.Abandoned, rep.Transfers)
			}
			base := rep.Transfers
			if cfg.Strategy == IDA {
				base = 0
				for _, a := range tr.Arrivals {
					base += len(e.Paths[a.Tmpl])
				}
			}
			if en.Injected != base+rep.Retries {
				t.Fatalf("drained run: injected %d != base pieces %d + retries %d", en.Injected, base, rep.Retries)
			}
		}
	})
}
