// One-to-all broadcast over Lemma 1's edge-disjoint Hamiltonian cycles
// (the structure behind Corollary 3): the source splits B flits into n
// chunks and pipelines each around its own cycle, dividing the
// bandwidth term by n versus a single-cycle pipeline.
package main

import (
	"fmt"
	"log"

	"multipath"
)

func main() {
	const n = 8
	q := multipath.NewHypercube(n)
	d, err := multipath.HamiltonianDecomposition(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q_%d decomposes into %d Hamiltonian cycles (×2 orientations)\n\n",
		n, len(d.Cycles))

	fmt.Println("    B   single-cycle   n-cycle split   speedup")
	for _, B := range []int{128, 512, 2048, 8192} {
		single, err := multipath.BroadcastMessages(q, B, false)
		if err != nil {
			log.Fatal(err)
		}
		multi, err := multipath.BroadcastMessages(q, B, true)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := multipath.Simulate(single, multipath.CutThrough)
		if err != nil {
			log.Fatal(err)
		}
		mr, err := multipath.Simulate(multi, multipath.CutThrough)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d   %12d   %13d   %6.2fx\n", B, sr.Steps, mr.Steps,
			float64(sr.Steps)/float64(mr.Steps))
	}
	fmt.Println("\nBoth pay the (2^n - 2)-hop latency of a Hamiltonian pipeline; the")
	fmt.Println("split divides the B-flit bandwidth term by n (→ n-fold for large B).")
}
