// Bit-serial routing (§7): long messages under a random permutation.
// Store-and-forward routing re-buffers the whole M-flit message at
// every hop (Θ(n·M) completion); splitting each message into n pieces
// and pipelining them over the n embedded CCC copies (Theorem 3,
// edge-congestion 2) completes in O(M + n).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"multipath"
	"multipath/internal/netsim"
	"multipath/internal/traffic"
)

func main() {
	const n = 8 // CCC levels; host Q_11, 2048 nodes
	mc, err := multipath.CCCMultiCopy(n)
	if err != nil {
		log.Fatal(err)
	}
	q := mc.Host
	rng := rand.New(rand.NewSource(7))
	perm := netsim.RandomPermutation(rng, q.Nodes())
	fmt.Printf("random permutation on Q_%d (%d nodes), %d CCC copies (congestion 2)\n\n",
		q.Dims(), q.Nodes(), len(mc.Copies))

	fmt.Println("   M   store&fwd   pipelined-CCC   speedup")
	for _, M := range []int{32, 64, 128, 256} {
		sf, err := netsim.Simulate(netsim.PermutationMessages(q, perm, M), netsim.StoreAndForward)
		if err != nil {
			log.Fatal(err)
		}
		msgs, err := traffic.MultiCopyCCCMessages(mc, n, perm, M)
		if err != nil {
			log.Fatal(err)
		}
		cc, err := netsim.Simulate(msgs, netsim.CutThrough)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d   %9d   %13d   %6.1fx\n", M, sf.Steps, cc.Steps,
			float64(sf.Steps)/float64(cc.Steps))
	}
	fmt.Println("\nStore-and-forward grows like distance×M; the split transfer grows")
	fmt.Println("like M/n per piece plus route length — the §7 wormhole speedup.")
}
