// Grid relaxation (§2 and §8.3): an M × M grid relaxation is
// partitioned into blocks, one per hypercube node; every phase each
// node exchanges its block perimeter with its four neighbors. This
// example compares the three mappings of §8.3 analytically and then
// measures a real communication phase on the embedded process grid.
package main

import (
	"fmt"
	"log"

	"multipath"
	"multipath/internal/netsim"
)

func main() {
	const M, N = 4096, 16 // 4096² grid points on a 256-node hypercube

	// First, prove the decomposition computes the right thing: a small
	// blocked Jacobi run is bitwise identical to the serial sweep.
	hot := func(i, j int) float64 {
		if i == 0 {
			return 100
		}
		return 0
	}
	serial := multipath.NewRelaxation(64, hot).SerialJacobi(8)
	blocked, stats, err := multipath.NewRelaxation(64, hot).BlockedJacobi(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	if !blocked.Equal(serial) {
		log.Fatal("blocked Jacobi diverged from serial reference")
	}
	fmt.Printf("blocked Jacobi (64², 8×8 blocks, 8 sweeps) == serial: ok; halo traffic %d values\n\n",
		stats.HaloValues)

	fmt.Printf("relaxation of a %dx%d grid on N²=%d processors (Q_8)\n\n", M, M, N*N)
	costs, err := multipath.CompareRelaxationMappings(M, N)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mapping             procs/node  traffic(points)  phase steps (model)")
	for _, c := range costs {
		fmt.Printf("%-18s  %10d  %15d  %19.0f\n",
			c.Kind.String(), c.ProcsPerNode, c.TrafficPoints, c.PhaseSteps)
	}

	// Measured: embed the N×N process grid with multiple paths and ship
	// M/N perimeter values per edge through the simulator. Relaxation
	// communicates in directed phases — one axis, one direction at a
	// time (the paper's §9 notes that overlapping phases is open) — so
	// measure each phase and sum the sweep.
	// A long axis embeds in Q_8 and gets width 5; the speedup per
	// phase is w/3, so wide subcubes are where multiple paths pay off.
	fmt.Println("\nmeasured directed phases (process grid 256x8, 256 values/edge):")
	g, err := multipath.GridEmbedding([]int{256, 8})
	if err != nil {
		log.Fatal(err)
	}
	const valuesPerEdge = M / N
	fmt.Println("  phase         width-1   multi-path   speedup")
	multiTotal, singleTotal := 0, 0
	for axis := 0; axis < 2; axis++ {
		for _, fwd := range []bool{true, false} {
			multi, err := netsim.Simulate(phaseMessages(g, axis, fwd, valuesPerEdge, false), netsim.CutThrough)
			if err != nil {
				log.Fatal(err)
			}
			single, err := netsim.Simulate(phaseMessages(g, axis, fwd, valuesPerEdge, true), netsim.CutThrough)
			if err != nil {
				log.Fatal(err)
			}
			multiTotal += multi.Steps
			singleTotal += single.Steps
			dir := "+"
			if !fwd {
				dir = "-"
			}
			fmt.Printf("  axis %d (%s)     %7d   %10d   %6.2fx\n",
				axis, dir, single.Steps, multi.Steps,
				float64(single.Steps)/float64(multi.Steps))
		}
	}
	fmt.Printf("  full sweep    %7d   %10d   %6.2fx\n",
		singleTotal, multiTotal, float64(singleTotal)/float64(multiTotal))
	fmt.Println("\nThe multi-path mapping turns each Θ(M/N) phase into Θ(M/(N·w)) —")
	fmt.Println("the §2 speedup of the paper, here measured end to end.")
}

// phaseMessages ships the perimeter values of one directed phase, over
// all paths or only the direct one.
func phaseMessages(g *multipath.GridMultiPath, axis int, forward bool, flits int, singleOnly bool) []*netsim.Message {
	var msgs []*netsim.Message
	for i, ps := range g.Paths {
		if g.EdgeAxis[i] != axis || g.EdgeForward[i] != forward {
			continue
		}
		if singleOnly {
			ps = ps[:1]
		}
		w := len(ps)
		for j, p := range ps {
			f := flits / w
			if j < flits%w {
				f++
			}
			ids, err := g.Host.PathEdgeIDs(p)
			if err != nil || len(ids) == 0 || f == 0 {
				continue
			}
			msgs = append(msgs, &netsim.Message{Route: ids, Flits: f})
		}
	}
	return msgs
}
