// ASCEND/DESCEND on the cube-connected cycles (Preparata & Vuillemin,
// the paper's [21]): bitonic sort runs identically on the hypercube
// (one dimension exchange per level) and on the constant-degree CCC
// (elements walk their column cycles and meet across cross edges) —
// which is why the CCC, and Theorem 3's n-copy embedding of it, matter.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"multipath/internal/ascend"
)

func main() {
	const n = 1 << 10
	rng := rand.New(rand.NewSource(7))
	data := make([]int, n)
	for i := range data {
		data[i] = rng.Intn(100000)
	}

	if err := ascend.BitonicSort(data); err != nil {
		log.Fatal(err)
	}
	sorted := true
	for i := 1; i < n; i++ {
		if data[i-1] > data[i] {
			sorted = false
		}
	}
	fmt.Printf("bitonic sort of %d keys: sorted=%v\n\n", n, sorted)

	// The same reduction, run both ways, with the CCC's communication
	// accounting.
	vals := make([]int, 64)
	for i := range vals {
		vals[i] = i
	}
	hyp := append([]int(nil), vals...)
	if _, err := ascend.AllReduce(hyp); err != nil {
		log.Fatal(err)
	}
	cccVals := append([]int(nil), vals...)
	trace, err := ascend.RunCCC(cccVals, ascend.Ascend, func(_ int, _ uint32, lo, hi int) (int, int) {
		s := lo + hi
		return s, s
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-reduce over 64 elements: hypercube=%d ccc=%d (equal=%v)\n",
		hyp[0], cccVals[0], hyp[0] == cccVals[0])
	fmt.Printf("CCC emulation: %d straight hops, %d cross hops, %d synchronous steps\n",
		trace.StraightHops, trace.CrossHops, trace.Steps)
	fmt.Println("\nEvery node of the CCC has degree 3, yet it runs the full")
	fmt.Println("ASCEND/DESCEND class with constant slowdown — and Theorem 3 packs")
	fmt.Println("n independent such machines into one hypercube at congestion 2.")
}
