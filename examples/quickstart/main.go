// Quickstart: build Theorem 1's multiple-path cycle embedding, verify
// its metrics against the classical Gray-code baseline, and measure the
// packet-cost speedup that is the paper's headline result.
package main

import (
	"fmt"
	"log"

	"multipath"
)

func main() {
	const n = 8 // host hypercube Q_8: 256 nodes

	// The classical embedding (Figure 1): the binary reflected Gray
	// code maps the 256-node cycle with dilation 1, but uses only one
	// of each node's 8 outgoing links.
	gray, err := multipath.GrayCodeCycle(n)
	if err != nil {
		log.Fatal(err)
	}

	// Theorem 1: every cycle edge gets 4 edge-disjoint length-3 paths
	// plus the direct link, all simultaneously usable.
	multi, err := multipath.CycleWidthEmbedding(n)
	if err != nil {
		log.Fatal(err)
	}

	width, err := multi.Width()
	if err != nil {
		log.Fatal(err)
	}
	cost, err := multi.SynchronizedCost()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 1 on Q_%d: load %d, width %d, synchronized cost %d\n",
		n, multi.Load(), width, cost)

	util, _ := gray.LinkUtilization()
	multiUtil, _ := multi.LinkUtilization()
	fmt.Printf("link utilization: gray %.3f vs multi-path %.3f\n", util, multiUtil)

	// The point of the paper: moving m packets per cycle edge.
	fmt.Println("\n  m   gray-code  multi-path  speedup")
	for _, m := range []int{5, 10, 20, 40, 80} {
		cg, err := gray.PPacketCost(m)
		if err != nil {
			log.Fatal(err)
		}
		cm, err := multi.PPacketCost(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d   %8d  %10d  %6.2fx\n", m, cg, cm, float64(cg)/float64(cm))
	}
	fmt.Println("\nGray code pays m steps; the width-w embedding pays ~3m/w — the")
	fmt.Println("Θ(n) speedup of Greenberg & Bhatt, optimal by their Lemma 3.")
}
