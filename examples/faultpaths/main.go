// Fault-tolerant transmission (§1): Rabin's Information Dispersal
// Algorithm run across the edge-disjoint paths of a multiple-path
// embedding. A width-5 embedding with threshold 3 delivers every
// message as long as at most two of an edge's five paths hit a faulty
// link — and because the paths are edge-disjoint, independent link
// faults rarely kill more than one.
//
// Part 1 checks path survival combinatorially (FaultTolerantSend).
// Part 2 sends the same traffic through the fault-aware network
// simulator (TransportSend): links die mid-flight, lost pieces are
// retried over surviving paths, and end-to-end latency is measured —
// IDA beats a single path on delivered fraction AND on speed, because
// pieces of ⌈M/k⌉ flits pipeline in parallel.
package main

import (
	"bytes"
	"fmt"
	"log"

	"multipath"
)

func main() {
	e, err := multipath.CycleWidthEmbedding(8)
	if err != nil {
		log.Fatal(err)
	}
	w, err := e.Width()
	if err != nil {
		log.Fatal(err)
	}
	const threshold = 3
	fmt.Printf("width-%d embedding on Q_8, IDA threshold %d (tolerates %d dead paths per edge)\n\n",
		w, threshold, w-threshold)

	payload := []byte("Greenberg & Bhatt, Routing Multiple Paths in Hypercubes, SPAA 1990")

	fmt.Println("-- combinatorial check: do k of n paths survive? --")
	fmt.Println("fault-prob  faulty-links  delivered  overhead")
	probs := []float64{0.0, 0.01, 0.03, 0.06, 0.10}
	for _, p := range probs {
		faults := multipath.NewFaultModel(e.Host.DirectedEdges(), p, 2026)
		delivered, total := 0, 256
		for edge := 0; edge < total; edge++ {
			rep, data, err := multipath.FaultTolerantSend(e, edge, payload, threshold, faults)
			if err != nil {
				log.Fatal(err)
			}
			if rep.Delivered {
				if !bytes.Equal(data, payload) {
					log.Fatal("reconstruction corrupted payload")
				}
				delivered++
			}
		}
		// IDA ships n/k times the payload in total.
		overhead := float64(w) / float64(threshold)
		fmt.Printf("%9.2f  %12d  %5d/%3d  %.2fx bytes\n",
			p, faults.FaultyCount(), delivered, total, overhead)
	}

	fmt.Println("\n-- measured through the simulator: 8-flit payloads, 1 retry round --")
	fmt.Println("fault-prob  strategy     delivered  mean-latency")
	for _, p := range probs {
		sched := multipath.BernoulliFaults(e.Host.DirectedEdges(), p, 2026)
		for _, strat := range []struct {
			name string
			cfg  multipath.TransportConfig
		}{
			{"single-path", multipath.TransportConfig{Strategy: multipath.SinglePathTransport}},
			{"ida k=3", multipath.TransportConfig{Strategy: multipath.IDATransport, K: threshold}},
		} {
			cfg := strat.cfg
			cfg.Mode = multipath.CutThrough
			cfg.Flits = 8
			cfg.MaxRetries = 1
			cfg.Faults = sched
			rep, err := multipath.TransportSend(e, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%9.2f  %-11s  %9.3f  %7.1f steps\n",
				p, strat.name, rep.DeliveredFraction, rep.MeanLatency)
		}
	}

	fmt.Println("\nEach piece is 1/3 of the payload; any 3 of the 5 pieces rebuild it.")
	fmt.Println("Without disjoint paths a single fault on the one route kills the message;")
	fmt.Println("with dispersal the transfer also finishes faster — the pieces pipeline.")
}
