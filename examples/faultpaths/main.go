// Fault-tolerant transmission (§1): Rabin's Information Dispersal
// Algorithm run across the edge-disjoint paths of a multiple-path
// embedding. A width-5 embedding with threshold 3 delivers every
// message as long as at most two of an edge's five paths hit a faulty
// link — and because the paths are edge-disjoint, independent link
// faults rarely kill more than one.
package main

import (
	"bytes"
	"fmt"
	"log"

	"multipath"
)

func main() {
	e, err := multipath.CycleWidthEmbedding(8)
	if err != nil {
		log.Fatal(err)
	}
	w, err := e.Width()
	if err != nil {
		log.Fatal(err)
	}
	const threshold = 3
	fmt.Printf("width-%d embedding on Q_8, IDA threshold %d (tolerates %d dead paths per edge)\n\n",
		w, threshold, w-threshold)

	payload := []byte("Greenberg & Bhatt, Routing Multiple Paths in Hypercubes, SPAA 1990")

	fmt.Println("fault-prob  faulty-links  delivered  overhead")
	for _, p := range []float64{0.0, 0.01, 0.03, 0.06, 0.10} {
		faults := multipath.NewFaultModel(e.Host.DirectedEdges(), p, 2026)
		delivered, total := 0, 256
		for edge := 0; edge < total; edge++ {
			rep, data, err := multipath.FaultTolerantSend(e, edge, payload, threshold, faults)
			if err != nil {
				log.Fatal(err)
			}
			if rep.Delivered {
				if !bytes.Equal(data, payload) {
					log.Fatal("reconstruction corrupted payload")
				}
				delivered++
			}
		}
		// IDA ships n/k times the payload in total.
		overhead := float64(w) / float64(threshold)
		fmt.Printf("%9.2f  %12d  %5d/%3d  %.2fx bytes\n",
			p, faults.FaultyCount(), delivered, total, overhead)
	}

	fmt.Println("\nEach piece is 1/3 of the payload; any 3 of the 5 pieces rebuild it.")
	fmt.Println("Without disjoint paths a single fault on the one route kills the message.")
}
