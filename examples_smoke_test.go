package multipath_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesSmoke builds and runs every example program end to end,
// requiring a zero exit status and the example's headline sentinel in
// its output. The examples are documentation that must keep compiling
// *and running* against the facade; `go build ./...` alone only checks
// the former. Each `go run` is a real toolchain invocation, so the
// test skips under -short and when no go binary is on PATH.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("building and running example binaries is slow")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go binary on PATH")
	}
	examples := []struct {
		name     string
		sentinel string
	}{
		{"quickstart", "Theorem 1 on Q_"},
		{"broadcast", "Hamiltonian cycles"},
		{"faultpaths", "embedding on Q_8"},
		{"gridrelax", "relaxation of a"},
		{"wormhole", "random permutation on Q_"},
		{"bitonic", "bitonic sort of"},
	}
	for _, ex := range examples {
		t.Run(ex.name, func(t *testing.T) {
			t.Parallel()
			// The test's working directory is the module root (this file's
			// package), which is exactly where `go run ./examples/...`
			// must run.
			out, err := exec.Command(goBin, "run", "./examples/"+ex.name).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", ex.name, err, out)
			}
			if !strings.Contains(string(out), ex.sentinel) {
				t.Errorf("output missing sentinel %q:\n%s", ex.sentinel, out)
			}
		})
	}
}
